"""The build/capability descriptor: one source of truth for info + /status."""

import repro
from repro.capabilities import SERVE_API_VERSION, build_descriptor
from repro.cli import main
from repro.faults.plan import FAULT_KINDS
from repro.perf.harness import SCENARIOS


class TestDescriptor:
    def test_descriptor_shape(self):
        desc = build_descriptor()
        assert desc["name"] == "repro"
        assert desc["version"] == repro.__version__
        assert desc["serve_api"] == SERVE_API_VERSION
        assert isinstance(desc["fast_paths_default"], bool)
        assert desc["fault_kinds"] == sorted(FAULT_KINDS)
        assert desc["scenarios"] == sorted(SCENARIOS)
        assert "serving" in desc["scenarios"]
        assert set(desc["algorithms"]) == {"qsa", "random", "fixed"}
        assert desc["composition_kernels"] == ["dijkstra", "dp", "vectorized"]
        assert desc["composition_kernel_default"] in desc["composition_kernels"]
        assert set(desc["lookup_protocols"]) == {"chord", "can"}

    def test_descriptor_is_json_able(self):
        import json

        assert json.loads(json.dumps(build_descriptor())) == build_descriptor()

    def test_fresh_dict_per_call(self):
        a = build_descriptor()
        b = build_descriptor()
        assert a == b and a is not b
        a["scenarios"].append("mutated")
        assert build_descriptor() == b


class TestInfoCommand:
    def test_info_renders_the_descriptor(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        desc = build_descriptor()
        assert f"repro {desc['version']}" in out
        assert desc["serve_api"] in out
        assert all(kind in out for kind in desc["fault_kinds"])
        assert all(name in out for name in desc["scenarios"])
