"""The bench ordering map must cover exactly the benches on disk.

``benchmarks/conftest.py`` sorts bench modules via ``BENCH_ORDER``; a
module missing from the map silently sorts last (key 99), which is how
``bench_flash_crowd`` and ``bench_latency_aware`` drifted out of order.
This test pins map <-> disk equivalence so the drift cannot recur.
"""

import importlib.util
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_modules_on_disk():
    return {p.stem for p in BENCH_DIR.glob("bench_*.py")}


class TestBenchOrderMap:
    def test_every_bench_file_is_ordered(self):
        order = load_bench_conftest().BENCH_ORDER
        on_disk = bench_modules_on_disk()
        assert on_disk, "no bench modules found -- wrong directory?"
        missing = on_disk - set(order)
        assert not missing, (
            f"bench modules missing from BENCH_ORDER (they would silently "
            f"sort last): {sorted(missing)}"
        )

    def test_no_stale_entries(self):
        order = load_bench_conftest().BENCH_ORDER
        stale = set(order) - bench_modules_on_disk()
        assert not stale, f"BENCH_ORDER names deleted benches: {sorted(stale)}"

    def test_order_keys_are_unique_ranks(self):
        order = load_bench_conftest().BENCH_ORDER
        ranks = list(order.values())
        assert len(ranks) == len(set(ranks)), "duplicate ordering ranks"
        assert all(rank < 99 for rank in ranks), (
            "rank 99 is the unregistered-module sentinel; keep explicit "
            "ranks below it"
        )
