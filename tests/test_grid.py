"""Integration tests for the P2PGrid facade."""

import numpy as np
import pytest

from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig


@pytest.fixture(scope="module")
def grid():
    return P2PGrid(GridConfig(n_peers=300, seed=42))


class TestConstruction:
    def test_population(self, grid):
        assert grid.directory.n_alive == 300
        assert len(grid.ring) == 300

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GridConfig(n_peers=1)
        with pytest.raises(ValueError):
            GridConfig(capacity_range=(0, 10))

    def test_config_applications_used(self):
        from repro.services.applications import ApplicationTemplate

        apps = (ApplicationTemplate("custom", ("alpha", "beta")),)
        g = P2PGrid(GridConfig(n_peers=100, seed=1, applications=apps))
        assert [a.name for a in g.applications] == ["custom"]
        assert g.catalog.candidates("alpha")

    def test_explicit_applications_override_config(self):
        from repro.services.applications import ApplicationTemplate

        cfg_apps = (ApplicationTemplate("from-config", ("s1x", "s2x")),)
        arg_apps = [ApplicationTemplate("from-arg", ("t1x", "t2x"))]
        g = P2PGrid(
            GridConfig(n_peers=100, seed=1, applications=cfg_apps),
            applications=arg_apps,
        )
        assert [a.name for a in g.applications] == ["from-arg"]

    def test_unknown_lookup_protocol_rejected(self):
        with pytest.raises(ValueError):
            P2PGrid(GridConfig(n_peers=100, lookup_protocol="bogus"))

    def test_capacities_within_range(self, grid):
        for peer in grid.directory.alive_peers():
            assert 100.0 <= peer.capacity.values[0] <= 1000.0
            # Both dimensions share the scale.
            assert peer.capacity.values[0] == peer.capacity.values[1]

    def test_initial_uptimes_warm(self, grid):
        ups, _ = grid.directory.uptimes(now=0.0)
        assert np.all(ups >= 0)
        assert np.all(ups <= 120.0)
        assert np.std(ups) > 0  # not all identical

    def test_catalog_registered_in_ring(self, grid):
        app = grid.applications[0]
        specs, _ = grid.registry.discover_service(app.services[0], from_peer=0)
        assert specs

    def test_weights_sum_to_one(self, grid):
        w = grid.composition_weights
        assert np.isclose(w.weights.sum() + w.bandwidth_weight, 1.0)
        p = grid.phi_weights
        assert np.isclose(p.weights.sum() + p.bandwidth_weight, 1.0)


class TestRequests:
    def test_make_request_defaults(self, grid):
        r = grid.make_request("video-on-demand")
        assert r.application == "video-on-demand"
        assert grid.directory.is_alive(r.peer_id)

    def test_request_ids_increment(self, grid):
        a = grid.make_request("video-on-demand")
        b = grid.make_request("video-on-demand")
        assert b.request_id == a.request_id + 1


class TestAggregatorFactory:
    def test_known_names(self, grid):
        for name in ("qsa", "random", "fixed"):
            agg = grid.make_aggregator(name)
            assert agg.name == name

    def test_unknown_name(self, grid):
        with pytest.raises(ValueError):
            grid.make_aggregator("bogus")

    def test_qsa_options(self, grid):
        agg = grid.make_aggregator("qsa", uptime_filter=False,
                                   composition_method="dijkstra")
        assert not agg.selector.uptime_filter
        assert agg.composition_method == "dijkstra"


class TestChurnIntegration:
    def test_departure_cleans_everything(self):
        g = P2PGrid(GridConfig(
            n_peers=100, seed=1, churn=ChurnConfig(rate_per_min=0.0)
        ))
        # Note: churn with rate 0 is disabled; drive events manually.
        from repro.network.churn import ChurnProcess
        churn = ChurnProcess(
            g.sim, g.directory, ChurnConfig(rate_per_min=1.0),
            spawn_peer=g._spawn_peer_churn,
            on_departure=g._on_peer_departure,
            rng=np.random.default_rng(0),
        )
        pid = churn.depart()
        assert pid is not None
        assert not g.directory.is_alive(pid)
        assert pid not in g.ring
        assert g.catalog.hosted_instances(pid) == ()
        for iid in g.catalog.instances:
            assert pid not in g.catalog.hosts(iid)

    def test_arrival_provisions_everything(self):
        g = P2PGrid(GridConfig(n_peers=100, seed=1))
        peer = g._spawn_peer_churn(now=0.0)
        assert g.directory.is_alive(peer.peer_id)
        assert peer.peer_id in g.ring
        hosted = g.catalog.hosted_instances(peer.peer_id)
        for iid in hosted:
            hosts, _ = g.registry.discover_hosts(iid, from_peer=0)
            assert peer.peer_id in hosts

    def test_sessions_fail_on_departure(self):
        g = P2PGrid(GridConfig(n_peers=100, seed=2))
        agg = g.make_aggregator("qsa")
        outcomes = []
        g.on_session_outcome(outcomes.append)
        # Admit a long session, then kill one of its peers.
        res = None
        for _ in range(10):
            req = g.make_request("video-on-demand", duration=100.0)
            res = agg.aggregate(req)
            if res.admitted:
                break
        assert res is not None and res.admitted
        victim = res.peers[0]
        g._on_peer_departure(victim)
        g.directory.depart(victim, g.sim.now)
        assert len(outcomes) == 1
        assert outcomes[0].state.value == "failed"
