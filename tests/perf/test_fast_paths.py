"""Differential proof for the discovery-plane fast paths.

The caches' contract is *exactness*: with ``GridConfig.fast_paths`` on,
every simulated observable -- admission decisions, ψ, lookup hop counts,
the full telemetry event stream -- must be byte-identical to a run with
the fast paths off.  Only wall-clock (and the cache hit counters, which
are metrics-only) may differ.

The telemetry JSONL export is the strongest single check: it serializes
every ``request.setup`` event (status, peers, lookup hops, fallbacks)
and every ``lookup.done`` / ``session.*`` / ``span`` event in emission
order, so byte-equality of the exports implies identical per-request
AggregationResult streams and identical event interleaving.
"""


import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.probing.prober import ProbingConfig
from repro.workload.generator import WorkloadConfig


def _config(fast, protocol="chord", churn_rate=0.0, export=None):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=250,
            probing=ProbingConfig(budget=10),
            churn=(ChurnConfig(rate_per_min=churn_rate)
                   if churn_rate > 0 else None),
            lookup_protocol=protocol,
            seed=3,
            fast_paths=fast,
        ),
        workload=WorkloadConfig(
            rate_per_min=40.0, horizon=8.0, duration_range=(1.0, 6.0)
        ),
        drain_minutes=10.0,
        telemetry_export=export,
    )


def _run_pair(tmp_path, **kwargs):
    exports = {}
    results = {}
    for fast in (True, False):
        path = tmp_path / f"fast_{fast}.jsonl"
        config = _config(fast, export=str(path), **kwargs)
        results[fast] = run_experiment(config)
        exports[fast] = path.read_bytes()
    return results, exports


def _assert_equivalent(results, exports):
    on, off = results[True], results[False]
    # Identical simulated behaviour ...
    assert exports[True] == exports[False]
    assert on.n_requests == off.n_requests
    assert on.success_ratio == off.success_ratio
    assert on.mean_lookup_hops == off.mean_lookup_hops
    assert on.n_admitted == off.n_admitted
    assert on.probe_overhead == off.probe_overhead
    assert on.metrics.breakdown() == off.metrics.breakdown()
    assert (on.n_routed_discoveries + on.n_cached_discoveries
            == off.n_routed_discoveries + off.n_cached_discoveries)
    # ... while the fast run actually exercised the caches and the slow
    # run never touched them.
    assert on.n_cached_discoveries > 0
    assert off.n_cached_discoveries == 0


@pytest.mark.slow
@pytest.mark.parametrize("protocol", ["chord", "can"])
def test_fast_paths_differential(tmp_path, protocol):
    results, exports = _run_pair(tmp_path, protocol=protocol)
    _assert_equivalent(results, exports)


@pytest.mark.slow
def test_fast_paths_differential_under_churn(tmp_path):
    results, exports = _run_pair(tmp_path, churn_rate=5.0)
    _assert_equivalent(results, exports)
    assert results[True].n_departures > 0  # churn actually happened


def test_fast_paths_flag_round_trips_through_grid():
    from repro.grid import P2PGrid

    fast = P2PGrid(_config(True).grid)
    slow = P2PGrid(_config(False).grid)
    assert fast.registry.cache_active
    assert not slow.registry.cache_active
    assert fast.ring.fast_paths and not slow.ring.fast_paths
    assert fast.probing.fast_paths and not slow.probing.fast_paths
