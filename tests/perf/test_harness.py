"""The perf-regression harness: schema, recording, and comparison."""

import copy
import json

import pytest

from repro.perf.harness import (
    BENCH_SCHEMA,
    DEFAULT_SCENARIOS,
    SCENARIOS,
    compare_benches,
    load_bench,
    next_bench_path,
    record_bench,
    validate_bench,
    write_bench,
)


def bench_doc(**scenario_overrides):
    """A minimal valid document with one scenario (no simulation run)."""
    scenario = {
        "description": "synthetic",
        "n_peers": 100,
        "rate_per_min": 10.0,
        "horizon": 5.0,
        "churn_per_min": 0.0,
        "n_requests": 50,
        "psi": 0.9,
        "wall_seconds": 0.5,
        "throughput": {
            "requests_per_sec": 100.0,
            "lookups_per_sec": 800.0,
            "probes_per_sec": 300.0,
        },
        "setup_latency_us": {
            "count": 50, "mean": 1500.0, "p50": 1400.0,
            "p95": 2800.0, "p99": 3300.0, "max": 5000.0,
        },
        "mean_lookup_hops": 12.0,
        "probe_overhead": 0.04,
    }
    scenario.update(scenario_overrides)
    return {
        "schema": BENCH_SCHEMA,
        "recorded_unix": 1_700_000_000.0,
        "seed": 0,
        "algorithm": "qsa",
        "scale_factor": 0.1,
        "host": {"platform": "test", "python": "3.11", "machine": "x86_64"},
        "scenarios": {"main": scenario},
    }


class TestSchema:
    def test_valid_document_passes(self):
        validate_bench(bench_doc())

    def test_wrong_schema_string(self):
        doc = bench_doc()
        doc["schema"] = "repro-bench/0"
        with pytest.raises(ValueError, match="schema mismatch"):
            validate_bench(doc)

    def test_missing_top_level_field(self):
        doc = bench_doc()
        del doc["seed"]
        with pytest.raises(ValueError, match="seed"):
            validate_bench(doc)

    def test_missing_scenario_field(self):
        doc = bench_doc()
        del doc["scenarios"]["main"]["psi"]
        with pytest.raises(ValueError, match="psi"):
            validate_bench(doc)

    def test_missing_percentile(self):
        doc = bench_doc()
        del doc["scenarios"]["main"]["setup_latency_us"]["p95"]
        with pytest.raises(ValueError, match="p95"):
            validate_bench(doc)

    def test_psi_out_of_range(self):
        with pytest.raises(ValueError, match=r"psi out of \[0, 1\]"):
            validate_bench(bench_doc(psi=1.5))

    def test_no_scenarios(self):
        doc = bench_doc()
        doc["scenarios"] = {}
        with pytest.raises(ValueError, match="no scenarios"):
            validate_bench(doc)


class TestPersistence:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_0.json")
        doc = bench_doc()
        write_bench(doc, path)
        assert load_bench(path) == doc

    def test_write_rejects_invalid(self, tmp_path):
        doc = bench_doc()
        doc["schema"] = "nope"
        with pytest.raises(ValueError):
            write_bench(doc, str(tmp_path / "x.json"))

    def test_load_error_names_path(self, tmp_path):
        path = tmp_path / "BENCH_9.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="BENCH_9.json"):
            load_bench(str(path))

    def test_next_bench_path_appends(self, tmp_path):
        assert next_bench_path(str(tmp_path)).endswith("BENCH_0.json")
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert next_bench_path(str(tmp_path)).endswith("BENCH_4.json")


class TestComparison:
    def test_identical_is_ok(self):
        comp = compare_benches(bench_doc(), bench_doc())
        assert comp.ok
        assert "no regressions" in comp.render()

    def test_throughput_drop_is_regression(self):
        new = bench_doc()
        new["scenarios"]["main"]["throughput"]["requests_per_sec"] = 50.0
        comp = compare_benches(bench_doc(), new)
        assert not comp.ok
        assert any("throughput" in r for r in comp.regressions)

    def test_latency_p95_rise_is_regression(self):
        new = bench_doc()
        new["scenarios"]["main"]["setup_latency_us"]["p95"] = 10_000.0
        comp = compare_benches(bench_doc(), new)
        assert any("p95" in r for r in comp.regressions)

    def test_psi_drop_is_regression(self):
        comp = compare_benches(bench_doc(), bench_doc(psi=0.8))
        assert any("ψ" in r for r in comp.regressions)

    def test_psi_within_tolerance_is_ok(self):
        comp = compare_benches(bench_doc(), bench_doc(psi=0.89))
        assert comp.ok

    def test_improvements_reported_not_failing(self):
        new = bench_doc()
        new["scenarios"]["main"]["throughput"]["requests_per_sec"] = 200.0
        comp = compare_benches(bench_doc(), new)
        assert comp.ok
        assert any("throughput" in s for s in comp.improvements)

    def test_small_noise_within_threshold_is_ok(self):
        new = bench_doc()
        new["scenarios"]["main"]["throughput"]["requests_per_sec"] = 90.0
        new["scenarios"]["main"]["setup_latency_us"]["p95"] = 3_000.0
        assert compare_benches(bench_doc(), new).ok

    def test_scenario_set_mismatch_noted(self):
        old = bench_doc()
        new = copy.deepcopy(old)
        new["scenarios"]["extra"] = copy.deepcopy(
            new["scenarios"]["main"]
        )
        comp = compare_benches(old, new)
        assert any("only in NEW" in n for n in comp.notes)

    def test_host_difference_noted(self):
        new = bench_doc()
        new["host"] = {"platform": "other", "python": "3.12",
                       "machine": "arm64"}
        comp = compare_benches(bench_doc(), new)
        assert any("different hosts" in n for n in comp.notes)

    def test_threshold_must_be_ratio(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_benches(bench_doc(), bench_doc(), threshold=25.0)


class TestRecording:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            record_bench(["no-such-scenario"])

    def test_default_scenarios_exist(self):
        assert set(DEFAULT_SCENARIOS) <= set(SCENARIOS)
        assert "smoke" in SCENARIOS

    def test_smoke_scenario_records_valid_document(self):
        progress = []
        doc = record_bench(["smoke"], seed=0, progress=progress.append)
        validate_bench(doc)
        assert progress and "smoke" in progress[0]
        sc = doc["scenarios"]["smoke"]
        assert sc["n_requests"] > 0
        assert 0.0 <= sc["psi"] <= 1.0
        assert sc["throughput"]["requests_per_sec"] > 0
        assert sc["setup_latency_us"]["count"] == sc["n_requests"]

    def test_recording_is_seed_deterministic_in_psi(self):
        a = record_bench(["smoke"], seed=5)
        b = record_bench(["smoke"], seed=5)
        assert a["scenarios"]["smoke"]["psi"] == b["scenarios"]["smoke"]["psi"]
        assert (a["scenarios"]["smoke"]["n_requests"]
                == b["scenarios"]["smoke"]["n_requests"])


class TestCommittedBench5:
    """BENCH_5.json is the first document with the scale scenarios;
    pin its shape so the scaling curve stays recorded per-PR."""

    @pytest.fixture(scope="class")
    def doc(self):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_5.json")
        if not os.path.exists(path):
            pytest.skip("BENCH_5.json not recorded yet")
        return load_bench(path)

    def test_scale_scenarios_present(self, doc):
        for name, n_peers in (("scale-1x", 10_000), ("scale-10x", 100_000)):
            sc = doc["scenarios"][name]
            assert sc["n_peers"] == n_peers
            assert sc["scale_factor"] == n_peers / 10_000.0
            assert sc["n_requests"] > 0
            assert 0.5 <= sc["psi"] <= 1.0
            # The memory-footprint evidence: peak RSS recorded, and the
            # SoA store's array footprint is megabytes even at 10^5 rows.
            assert sc["peak_rss_bytes"] > 0
            assert 0 < sc["store_memory_bytes"] < 64e6

    def test_every_scenario_carries_scale_factor(self, doc):
        assert all("scale_factor" in sc for sc in doc["scenarios"].values())
