"""Differential proof for the struct-of-arrays peer-state core.

``GridConfig.peer_state_backend`` selects between the object directory
(one ``Peer`` per row) and the SoA directory (contiguous numpy arrays
behind row-view facades).  The backend is a *representation* choice: for
any seed, any churn rate and any fault plan, every simulated observable
-- ψ, admissions, lookup hops, and the full telemetry event stream --
must be byte-identical across backends.  Only wall-clock may differ.

The telemetry JSONL export is the strongest single check (it serializes
every event in emission order), so byte-equality of the exports implies
identical per-request outcomes and identical event interleaving.

Three fixed regime pairs (baseline / churn / faulted) anchor the suite;
a Hypothesis sweep then draws random small-grid configurations --
population, budget, churn, fault plans -- and re-proves equivalence on
each.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultPlan, FaultSpec
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.probing.prober import ProbingConfig
from repro.workload.generator import WorkloadConfig

FAULTED_PLAN = FaultPlan((
    FaultSpec(kind="probe_loss", rate=0.3),
    FaultSpec(kind="lookup_failure", rate=0.15),
    FaultSpec(kind="admission_failure", rate=0.1),
    FaultSpec(kind="stale_state", rate=0.5, staleness=2.0),
    FaultSpec(kind="partition", start=2.0, end=4.0, fraction=0.3),
), name="soa-differential")


def _config(
    backend,
    seed=3,
    n_peers=250,
    budget=10,
    churn_rate=0.0,
    faults=None,
    rate_per_min=30.0,
    horizon=10.0,
    export=None,
):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=n_peers,
            probing=ProbingConfig(budget=budget),
            churn=(ChurnConfig(rate_per_min=churn_rate)
                   if churn_rate > 0 else None),
            faults=faults,
            seed=seed,
            peer_state_backend=backend,
            telemetry=True,
        ),
        workload=WorkloadConfig(
            rate_per_min=rate_per_min, horizon=horizon,
            duration_range=(1.0, 8.0),
        ),
        drain_minutes=10.0,
        telemetry_export=export,
    )


def _run_pair(tmp_path, tag="", **kwargs):
    exports = {}
    results = {}
    for backend in ("soa", "object"):
        path = tmp_path / f"{backend}{tag}.jsonl"
        results[backend] = run_experiment(
            _config(backend, export=str(path), **kwargs)
        )
        exports[backend] = path.read_bytes()
    return results, exports


def _assert_equivalent(results, exports):
    soa, obj = results["soa"], results["object"]
    assert exports["soa"] == exports["object"]
    assert soa.n_requests == obj.n_requests
    assert soa.success_ratio == obj.success_ratio
    assert soa.mean_lookup_hops == obj.mean_lookup_hops
    assert soa.n_admitted == obj.n_admitted
    assert soa.probe_overhead == obj.probe_overhead
    assert soa.metrics.breakdown() == obj.metrics.breakdown()


@pytest.mark.slow
class TestRegimePairs:
    def test_baseline(self, tmp_path):
        _assert_equivalent(*_run_pair(tmp_path))

    def test_churn(self, tmp_path):
        _assert_equivalent(*_run_pair(tmp_path, churn_rate=5.0))

    def test_faulted(self, tmp_path):
        # Fault injection keeps the prober's per-object snapshot plane
        # (ghost/degrade state is per-peer by nature), so this pair
        # proves the SoA directory composes with the injector too.
        _assert_equivalent(*_run_pair(tmp_path, faults=FAULTED_PLAN))


@pytest.mark.slow
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_peers=st.integers(min_value=60, max_value=160),
    budget=st.integers(min_value=4, max_value=20),
    churn_rate=st.sampled_from([0.0, 0.0, 3.0, 8.0]),
    faulted=st.booleans(),
)
def test_soa_differential_random_grids(
    tmp_path_factory, seed, n_peers, budget, churn_rate, faulted
):
    tmp_path = tmp_path_factory.mktemp("soa_diff")
    results, exports = _run_pair(
        tmp_path,
        tag=f"-{seed}",
        seed=seed,
        n_peers=n_peers,
        budget=budget,
        churn_rate=churn_rate,
        faults=FAULTED_PLAN if faulted else None,
        rate_per_min=25.0,
        horizon=6.0,
    )
    _assert_equivalent(results, exports)
