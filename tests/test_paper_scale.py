"""Smoke tests at the paper's literal scale (10^4 peers).

These verify the library actually operates at §4.1's population size --
construction stays sub-second-ish, requests stay at a few milliseconds,
and the probing budget honors the 1% overhead bound -- without running
the (long) full-horizon experiments.
"""

import time

import pytest

from repro.grid import GridConfig, P2PGrid
from repro.probing.prober import ProbingConfig


@pytest.fixture(scope="module")
def paper_grid():
    return P2PGrid(GridConfig(
        n_peers=10_000, seed=0, probing=ProbingConfig(budget=100),
    ))


class TestPaperScale:
    def test_population_and_ring(self, paper_grid):
        assert paper_grid.directory.n_alive == 10_000
        assert len(paper_grid.ring) == 10_000

    def test_catalog_statistics(self, paper_grid):
        catalog = paper_grid.catalog
        for service, instances in catalog.by_service.items():
            assert 10 <= len(instances) <= 20
        for iid in list(catalog.instances)[:50]:
            assert 40 <= len(catalog.hosts(iid)) <= 80

    def test_requests_work_and_are_fast(self, paper_grid):
        agg = paper_grid.make_aggregator("qsa")
        t0 = time.perf_counter()  # lint: disable=DET001 -- throughput budget check
        admitted = 0
        n = 30
        for _ in range(n):
            r = agg.aggregate(
                paper_grid.make_request("video-on-demand", duration=0.5)
            )
            admitted += r.admitted
            paper_grid.sim.run()
        per_request = (time.perf_counter() - t0) / n  # lint: disable=DET001 -- throughput budget check
        assert admitted >= n * 0.8
        # Generous bound: an order of magnitude above the measured ~5 ms
        # so slow CI machines do not flake.
        assert per_request < 0.1

    def test_probe_overhead_at_one_percent(self, paper_grid):
        agg = paper_grid.make_aggregator("qsa")
        for _ in range(20):
            agg.aggregate(paper_grid.make_request("enhanced-vod",
                                                  duration=0.5))
            paper_grid.sim.run()
        assert paper_grid.probing.overhead_ratio() <= 100 / 10_000 + 1e-9

    def test_chord_hops_logarithmic_at_scale(self, paper_grid):
        # log2(10^4) ~ 13.3; the greedy walk should stay well under 20.
        agg = paper_grid.make_aggregator("qsa")
        res = agg.aggregate(
            paper_grid.make_request("content-retrieval", duration=0.5)
        )
        paper_grid.sim.run()
        n_lookups = len(res.composed.instances) + 2 if res.composed else 2
        assert res.lookup_hops / max(n_lookups, 1) < 20
