"""Unit tests for the decision-trace explainer."""

import pytest

from repro.core.explain import explain_result
from repro.grid import GridConfig, P2PGrid


@pytest.fixture(scope="module")
def grid():
    return P2PGrid(GridConfig(n_peers=250, seed=21))


def aggregate_until(grid, admitted=True, tries=20):
    agg = grid.make_aggregator("qsa")
    last = None
    for _ in range(tries):
        req = grid.make_request("video-on-demand", duration=1.0)
        last = agg.aggregate(req)
        if last.admitted == admitted:
            return last
    return last


class TestExplainAdmitted:
    def test_contains_all_sections(self, grid):
        result = aggregate_until(grid, admitted=True)
        assert result.admitted
        text = explain_result(result)
        assert "request #" in text
        assert "admitted" in text
        assert "tier 1" in text
        assert "tier 2" in text
        assert "session #" in text
        assert "DHT hops" in text

    def test_one_line_per_instance_and_hop(self, grid):
        result = aggregate_until(grid, admitted=True)
        text = explain_result(result)
        n = len(result.composed.instances)
        assert sum(1 for l in text.splitlines() if l.strip().startswith("[")) == n
        assert sum(
            1 for l in text.splitlines() if l.strip().startswith("hop ")
        ) == n

    def test_phi_or_fallback_shown(self, grid):
        result = aggregate_until(grid, admitted=True)
        text = explain_result(result)
        assert ("Φ=" in text) or ("random fallback" in text)

    def test_peers_in_trace_match_result(self, grid):
        result = aggregate_until(grid, admitted=True)
        text = explain_result(result)
        for pid in result.peers:
            assert f"peer {pid}" in text


class TestExplainFailures:
    def test_composition_failure_explained(self, grid):
        from repro.core.composition import CompositionError

        agg = grid.make_aggregator("qsa")
        agg.compose = lambda *a, **kw: (_ for _ in ()).throw(
            CompositionError("x")
        )
        res = agg.aggregate(grid.make_request("video-on-demand", duration=1.0))
        text = explain_result(res)
        assert "composition-failed" in text
        assert "no path produced" in text

    def test_baseline_without_hop_trace(self, grid):
        agg = grid.make_aggregator("random")
        res = None
        for _ in range(10):
            res = agg.aggregate(
                grid.make_request("video-on-demand", duration=1.0)
            )
            if res.admitted:
                break
        text = explain_result(res)
        if res.admitted:
            assert "no per-hop trace" in text
