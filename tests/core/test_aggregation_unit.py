"""Unit tests for the aggregation pipeline's branch behaviour (with fakes)."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationStatus, BaseAggregator
from repro.core.composition import CompositionError
from repro.grid import GridConfig, P2PGrid
from repro.services.qoscompiler import UserRequest

NAMES = ("cpu", "memory")


def request(app="video-on-demand", level="average"):
    return UserRequest(
        request_id=0, peer_id=0, application=app, qos_level=level,
        session_duration=5.0, arrival_time=0.0,
    )


@pytest.fixture()
def grid():
    return P2PGrid(GridConfig(n_peers=200, seed=13))


class TestStatusBranches:
    def test_no_candidates(self, grid):
        """Discovery returning nothing for a service -> NO_CANDIDATES."""
        agg = grid.make_aggregator("qsa")
        # Erase the service record for one abstract service.
        svc = grid.applications[1].services[0]
        grid.ring.put("service:" + svc, ())
        res = agg.aggregate(
            grid.make_request(grid.applications[1].name, duration=1.0)
        )
        assert res.status is AggregationStatus.NO_CANDIDATES
        assert res.session is None

    def test_composition_failed(self, grid):
        agg = grid.make_aggregator("qsa")

        def explode(*a, **kw):
            raise CompositionError("nope")

        agg.compose = explode
        res = agg.aggregate(grid.make_request("video-on-demand", duration=1.0))
        assert res.status is AggregationStatus.COMPOSITION_FAILED

    def test_selection_failed(self, grid):
        agg = grid.make_aggregator("qsa")
        agg.select_peers = lambda *a, **kw: None
        res = agg.aggregate(grid.make_request("video-on-demand", duration=1.0))
        assert res.status is AggregationStatus.SELECTION_FAILED
        assert res.composed is not None

    def test_resources_denied(self, grid):
        agg = grid.make_aggregator("qsa")
        original = agg.select_peers

        def select_then_drain(req, composed, hosts):
            peers = original(req, composed, hosts)
            if peers:
                # Drain the first peer so admission must fail.
                peer = grid.directory[peers[0]]
                peer.available.values[:] = 0.0
            return peers

        agg.select_peers = select_then_drain
        res = agg.aggregate(grid.make_request("video-on-demand", duration=1.0))
        assert res.status is AggregationStatus.RESOURCES_DENIED

    def test_bandwidth_denied(self, grid):
        agg = grid.make_aggregator("qsa")
        original = agg.select_peers

        def select_then_choke(req, composed, hosts):
            peers = original(req, composed, hosts)
            if peers:
                grid.directory[peers[0]].avail_up = 0.0
            return peers

        agg.select_peers = select_then_choke
        res = agg.aggregate(grid.make_request("video-on-demand", duration=1.0))
        assert res.status is AggregationStatus.BANDWIDTH_DENIED

    def test_base_class_hooks_abstract(self, grid):
        base = BaseAggregator(
            grid.compiler, grid.registry, grid.directory, grid.ledger,
            np.random.default_rng(0),
        )
        with pytest.raises(NotImplementedError):
            base.compose(None, None, None, None)
        with pytest.raises(NotImplementedError):
            base.select_peers(None, None, None)


class TestHopByHopSemantics:
    def test_selection_proceeds_in_reverse_flow_order(self, grid):
        """Each hop's selector is the previously selected peer."""
        agg = grid.make_aggregator("qsa")
        observed = []
        original = agg.selector.select_hop

        def spy(selecting_peer, **kw):
            observed.append(selecting_peer)
            return original(selecting_peer=selecting_peer, **kw)

        agg.selector.select_hop = spy
        req = None
        res = None
        for _ in range(10):
            observed.clear()
            req = grid.make_request("video-on-demand", duration=1.0)
            res = agg.aggregate(req)
            if res.admitted:
                break
        assert res is not None and res.admitted
        # First selector is the requesting host...
        assert observed[0] == req.peer_id
        # ...then each selected peer selects the next hop: the selector at
        # step i+1 equals the peer chosen at step i (selection order is
        # reverse flow, so compare against reversed peers).
        selection_order_peers = list(reversed(res.peers))
        assert observed[1:] == selection_order_peers[:-1]

    def test_fallback_count_reported(self, grid):
        """With an empty probing budget every hop falls back to random."""
        g = P2PGrid(GridConfig(n_peers=200, seed=14))
        g.probing.config = type(g.probing.config)(
            budget=0, period=1.0, ttl=10.0
        )
        agg = g.make_aggregator("qsa")
        res = None
        for _ in range(10):
            res = agg.aggregate(g.make_request("video-on-demand", duration=1.0))
            if res.admitted:
                break
        assert res is not None
        if res.admitted:
            assert res.random_fallbacks == len(res.peers)
