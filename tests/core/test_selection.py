"""Unit tests for the Φ metric and the peer-selection step (paper §3.3)."""

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.core.selection import PeerInfo, PeerSelector, PhiWeights

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


class DictView:
    """A PerformanceView backed by a plain dict (observer-independent)."""

    def __init__(self, infos):
        self.infos = {i.peer_id: i for i in infos}

    def observe(self, observer, target):
        return self.infos.get(target)


def info(pid, cpu=100.0, mem=100.0, bw=1e6, uptime=1e9, latency=20.0):
    return PeerInfo(pid, rv(cpu, mem), bw, uptime, latency)


UNIFORM = PhiWeights.uniform(NAMES)


class TestPhiWeights:
    def test_sum_to_one_enforced(self):
        with pytest.raises(ValueError):
            PhiWeights(NAMES, [0.5, 0.5], 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhiWeights(NAMES, [-0.2, 0.7], 0.5)

    def test_normalize(self):
        w = PhiWeights(NAMES, [1, 1], 1, normalize=True)
        assert np.isclose(w.weights.sum() + w.bandwidth_weight, 1.0)

    def test_uniform(self):
        assert np.allclose(UNIFORM.weights, 1 / 3)

    def test_phi_formula(self):
        w = PhiWeights(NAMES, [0.5, 0.25], 0.25)
        # ra/r = [2, 4], beta/b = 8 -> 0.5*2 + 0.25*4 + 0.25*8 = 4.0
        val = w.phi(rv(200, 400), rv(100, 100), beta=800, bandwidth_req=100)
        assert np.isclose(val, 4.0)

    def test_phi_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        req = rv(50, 80)
        b = 100.0
        infos = [
            (rv(*rng.uniform(1, 1000, 2)), float(rng.uniform(1e3, 1e7)))
            for _ in range(20)
        ]
        batch = UNIFORM.phi_batch(
            np.stack([a.values for a, _ in infos]),
            req.values,
            np.array([beta for _, beta in infos]),
            b,
        )
        for k, (a, beta) in enumerate(infos):
            assert np.isclose(batch[k], UNIFORM.phi(a, req, beta, b))

    def test_zero_requirement_capped_not_inf(self):
        val = UNIFORM.phi(rv(10, 10), rv(0, 10), beta=100, bandwidth_req=0)
        assert np.isfinite(val)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            UNIFORM.phi(ResourceVector(("cpu",), [1]), rv(1, 1), 1, 1)


class TestPeerSelector:
    def test_picks_highest_phi(self):
        view = DictView([
            info(1, cpu=100, mem=100, bw=1e5),
            info(2, cpu=900, mem=900, bw=1e7),  # most abundant
            info(3, cpu=500, mem=500, bw=1e6),
        ])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1, 2, 3], rv(50, 50), 1e4, 10.0,
                             np.random.default_rng(0))
        assert out.peer_id == 2
        assert not out.random_fallback
        assert out.n_known == 3

    def test_empty_candidates(self):
        sel = PeerSelector(DictView([]), UNIFORM)
        out = sel.select_hop(0, [], rv(1, 1), 1, 1, np.random.default_rng(0))
        assert out.peer_id is None

    def test_random_fallback_when_nothing_known(self):
        sel = PeerSelector(DictView([]), UNIFORM)
        rng = np.random.default_rng(0)
        out = sel.select_hop(0, [7, 8, 9], rv(1, 1), 1, 1, rng)
        assert out.peer_id in (7, 8, 9)
        assert out.random_fallback
        assert out.n_known == 0

    def test_uptime_filter_excludes_young_peers(self):
        view = DictView([
            info(1, cpu=900, mem=900, uptime=5.0),   # abundant but young
            info(2, cpu=100, mem=100, uptime=100.0),  # modest but stable
        ])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1, 2], rv(50, 50), 1e4, 30.0,
                             np.random.default_rng(0))
        assert out.peer_id == 2

    def test_uptime_filter_can_be_disabled(self):
        view = DictView([
            info(1, cpu=900, mem=900, uptime=5.0),
            info(2, cpu=100, mem=100, uptime=100.0),
        ])
        sel = PeerSelector(view, UNIFORM, uptime_filter=False)
        out = sel.select_hop(0, [1, 2], rv(50, 50), 1e4, 30.0,
                             np.random.default_rng(0))
        assert out.peer_id == 1

    def test_feasibility_filter_excludes_overloaded(self):
        view = DictView([
            info(1, cpu=10, mem=10),    # cannot fit requirement
            info(2, cpu=60, mem=60),
        ])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1, 2], rv(50, 50), 1e4, 1.0,
                             np.random.default_rng(0))
        assert out.peer_id == 2

    def test_bandwidth_feasibility(self):
        view = DictView([
            info(1, bw=1e3),  # starved link
            info(2, bw=1e6),
        ])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1, 2], rv(1, 1), 1e4, 1.0,
                             np.random.default_rng(0))
        assert out.peer_id == 2

    def test_all_filtered_falls_back_to_best_known(self):
        """When every known candidate fails the filters and there are no
        unknown candidates, rank the known ones by Φ anyway."""
        view = DictView([
            info(1, cpu=10, mem=10, uptime=0.0),
            info(2, cpu=30, mem=30, uptime=0.0),
        ])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1, 2], rv(50, 50), 1e4, 1e9,
                             np.random.default_rng(0))
        assert out.peer_id == 2  # higher Φ of the two

    def test_all_known_filtered_prefers_unknown_random(self):
        view = DictView([info(1, cpu=1, mem=1, uptime=0.0)])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1, 2, 3], rv(50, 50), 1e4, 1e9,
                             np.random.default_rng(0))
        assert out.peer_id in (2, 3)
        assert out.random_fallback

    def test_single_qualified_shortcut(self):
        view = DictView([info(1, cpu=100, mem=100)])
        sel = PeerSelector(view, UNIFORM)
        out = sel.select_hop(0, [1], rv(50, 50), 1e4, 1.0,
                             np.random.default_rng(0))
        assert out.peer_id == 1
        assert out.phi is not None

    def test_phi_value_reported_matches_manual(self):
        view = DictView([info(1, cpu=200, mem=200, bw=2e4)])
        sel = PeerSelector(view, UNIFORM)
        req = rv(100, 100)
        out = sel.select_hop(0, [1], req, 1e4, 1.0, np.random.default_rng(0))
        assert np.isclose(out.phi, UNIFORM.phi(rv(200, 200), req, 2e4, 1e4))

    def test_load_balance_statistics(self):
        """Over many draws the Φ policy concentrates on the abundant peer,
        while random fallback spreads uniformly."""
        view = DictView([info(1, cpu=100, mem=100), info(2, cpu=101, mem=101)])
        sel = PeerSelector(view, UNIFORM)
        rng = np.random.default_rng(0)
        picks = [
            sel.select_hop(0, [1, 2], rv(50, 50), 1e4, 1.0, rng).peer_id
            for _ in range(50)
        ]
        assert set(picks) == {2}  # deterministic argmax
