"""Property proof that all three QCS kernels compute the same function.

Hypothesis generates layered candidate sets with varying path length
(K), per-layer population (V, including empty layers), satisfaction
density (format chains that mostly -- but not always -- connect) and
score ties (resources drawn from a coarse grid so equal scalar scores
are common), then checks that

    vectorized == dijkstra == dp

on the chosen path, the float score, the aggregated resource tuple and
the ``CompositionError`` behaviour (same error, same message).  The
vectorized kernel is additionally held to its *amortized* contract: a
second compose of the same request must hit the plan cache and still
return the identical result.

This is the oracle-differential methodology of docs/performance.md: the
reference kernels are slow but obviously faithful to §3.2, so agreement
over hundreds of adversarial inputs is the exactness evidence for the
numpy rewrite.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.composition import CompositionError, compose_qcs
from repro.core.composition_vec import VectorizedComposer, compose_qcs_vec
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e7)

#: Format alphabet: chains mostly connect (the drawn stage format), but
#: the generator may substitute "off" to create inconsistent instances
#: and infeasible layers.
_FORMATS = ("f0", "f1", "f2", "f3", "f4")

#: Module-global id stream so a long-lived composer never sees two
#: distinct records under one instance_id (the catalog's invariant).
_IDS = itertools.count()


@st.composite
def layered_cases(draw, min_candidates=0):
    """One composition request: path, candidates, user requirement."""
    n_services = draw(st.integers(min_value=1, max_value=4))
    services = tuple(f"svc{k}" for k in range(n_services))
    candidates = {}
    for k, service in enumerate(services):
        n_cands = draw(st.integers(min_value=min_candidates, max_value=5))
        layer = []
        for _ in range(n_cands):
            # Coarse grids make exact score ties likely, which is the
            # interesting regime for tie-break equivalence.
            cpu = draw(st.sampled_from((10.0, 20.0, 40.0, 80.0)))
            mem = draw(st.sampled_from((10.0, 20.0, 40.0, 80.0)))
            bw = draw(st.sampled_from((100.0, 200.0)))
            consistent_in = draw(st.booleans())
            consistent_out = draw(
                st.integers(min_value=0, max_value=9)
            ) < 8
            quality = draw(st.integers(min_value=1, max_value=3))
            layer.append(ServiceInstance(
                instance_id=f"i{next(_IDS)}",
                service=service,
                qin=QoSVector(
                    format=_FORMATS[k] if consistent_in else "off",
                    quality=Interval(1, 3),
                ),
                qout=QoSVector(
                    format=_FORMATS[k + 1] if consistent_out else "off",
                    quality=quality,
                ),
                resources=ResourceVector(NAMES, [cpu, mem]),
                bandwidth=bw,
            ))
        candidates[service] = layer
    min_quality = draw(st.integers(min_value=1, max_value=3))
    user_qos = QoSVector(
        format=_FORMATS[n_services],
        quality=Interval(min_quality, 3),
    )
    path = AbstractServicePath("app", services)
    return path, candidates, user_qos


def _outcome(fn, *args, **kwargs):
    """(result, None) on success, (None, message) on CompositionError."""
    try:
        return fn(*args, **kwargs), None
    except CompositionError as exc:
        return None, str(exc)


def _assert_same(case, a, a_err, b, b_err, label):
    assert a_err == b_err, (label, case, a_err, b_err)
    if a is not None:
        assert b is not None, (label, case)
        assert a.instances == b.instances, (label, case, a, b)
        assert a.score == b.score, (label, case, a.score, b.score)
        assert a.total == b.total, (label, case, a.total, b.total)


class TestThreeKernelEquivalence:
    @settings(deadline=None, max_examples=200)
    @given(case=layered_cases())
    def test_vectorized_matches_both_references(self, case):
        path, candidates, user_qos = case
        dp, dp_err = _outcome(
            compose_qcs, path, candidates, user_qos, WEIGHTS, method="dp"
        )
        dj, dj_err = _outcome(
            compose_qcs, path, candidates, user_qos, WEIGHTS,
            method="dijkstra",
        )
        vec, vec_err = _outcome(
            compose_qcs_vec, path, candidates, user_qos, WEIGHTS
        )
        _assert_same(case, dp, dp_err, dj, dj_err, "dp-vs-dijkstra")
        _assert_same(case, dp, dp_err, vec, vec_err, "dp-vs-vectorized")

    @settings(deadline=None, max_examples=60)
    @given(case=layered_cases(min_candidates=1))
    def test_plan_cache_hit_path_is_identical(self, case):
        path, candidates, user_qos = case
        composer = VectorizedComposer(WEIGHTS)
        first, first_err = _outcome(
            composer.compose, path, candidates, user_qos
        )
        hits_before = composer.plan_stats.hits
        second, second_err = _outcome(
            composer.compose, path, candidates, user_qos
        )
        assert composer.plan_stats.hits == hits_before + 1
        _assert_same(case, first, first_err, second, second_err, "hit-path")
        dp, dp_err = _outcome(
            compose_qcs, path, candidates, user_qos, WEIGHTS, method="dp"
        )
        _assert_same(case, dp, dp_err, second, second_err, "hit-vs-dp")


class TestTieBreaking:
    def _inst(self, service, fmt_in, fmt_out, tag):
        # Every candidate identical in score: any divergence in the
        # kernels' tie-breaking (reference: first strict improvement;
        # vectorized: argmin first occurrence) would surface here.
        return ServiceInstance(
            instance_id=f"tie/{service}/{tag}",
            service=service,
            qin=QoSVector(format=fmt_in, quality=Interval(1, 3)),
            qout=QoSVector(format=fmt_out, quality=3),
            resources=ResourceVector(NAMES, [10.0, 10.0]),
            bandwidth=100.0,
        )

    def test_all_kernels_prefer_the_first_tied_candidate(self):
        path = AbstractServicePath("app", ("a", "b"))
        candidates = {
            "a": [self._inst("a", "f0", "f1", j) for j in range(4)],
            "b": [self._inst("b", "f1", "f2", j) for j in range(4)],
        }
        user_qos = QoSVector(format="f2", quality=Interval(1, 3))
        results = [
            compose_qcs(path, candidates, user_qos, WEIGHTS, method="dp"),
            compose_qcs(
                path, candidates, user_qos, WEIGHTS, method="dijkstra"
            ),
            compose_qcs_vec(path, candidates, user_qos, WEIGHTS),
        ]
        ids = [
            tuple(i.instance_id for i in r.instances) for r in results
        ]
        assert ids[0] == ids[1] == ids[2] == ("tie/a/0", "tie/b/0")
        assert results[0].score == results[1].score == results[2].score
