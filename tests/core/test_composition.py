"""Unit tests for the QCS composition algorithm (paper §3.2, Fig. 3)."""

import numpy as np
import pytest

from repro.core.composition import (
    CompositionError,
    ConsistencyGraph,
    compose_qcs,
)
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceTuple, ResourceVector, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def inst(iid, service, fmt_in, fmt_out, cpu=10.0, mem=10.0, bw=100.0, quality=3):
    """A simple instance: format pipeline plus a quality level."""
    return ServiceInstance(
        instance_id=iid,
        service=service,
        qin=QoSVector(format=fmt_in, quality=Interval(1, 3)),
        qout=QoSVector(format=fmt_out, quality=quality),
        resources=rv(cpu, mem),
        bandwidth=bw,
    )


WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e7)
USER = QoSVector(format="final", quality=Interval(1, 3))


def two_hop_catalog():
    """source: raw -> mid; last: mid -> final."""
    return {
        "src": [
            inst("src/cheap", "src", "nothing", "mid", cpu=10, mem=10, bw=100),
            inst("src/costly", "src", "nothing", "mid", cpu=500, mem=500, bw=1e6),
        ],
        "last": [
            inst("last/cheap", "last", "mid", "final", cpu=20, mem=20, bw=200),
            inst("last/costly", "last", "mid", "final", cpu=400, mem=400, bw=5e5),
        ],
    }


PATH2 = AbstractServicePath("app", ("src", "last"))


class TestConsistencyGraph:
    def test_layers_reverse_flow_order(self):
        g = ConsistencyGraph(PATH2, two_hop_catalog(), USER, WEIGHTS)
        # layer 0 = sink, layer 1 = 'last', layer 2 = 'src'
        assert g.n_layers == 3
        assert [i.service for i in g.layers[1]] == ["last", "last"]
        assert [i.service for i in g.layers[2]] == ["src", "src"]

    def test_missing_candidates_raise(self):
        with pytest.raises(CompositionError):
            ConsistencyGraph(PATH2, {"src": two_hop_catalog()["src"]}, USER, WEIGHTS)

    def test_edge_counts(self):
        g = ConsistencyGraph(PATH2, two_hop_catalog(), USER, WEIGHTS)
        # sink accepts both 'last' instances; each 'last' accepts both 'src'.
        assert g.n_edges == 2 + 4
        assert g.n_nodes == 1 + 4

    def test_inconsistent_edges_absent(self):
        cat = two_hop_catalog()
        cat["last"].append(inst("last/wrongin", "last", "XXX", "final"))
        g = ConsistencyGraph(PATH2, cat, USER, WEIGHTS)
        # wrongin connects to sink but receives no edges from src layer.
        assert (0, 0) in g.edges
        assert len(g.edges[(0, 0)]) == 3  # all three satisfy the sink
        assert (1, 2) not in g.edges  # wrongin has no consistent predecessor


class TestComposeQCS:
    def test_picks_minimum_aggregate_path(self):
        path = compose_qcs(PATH2, two_hop_catalog(), USER, WEIGHTS)
        assert [i.instance_id for i in path.instances] == ["src/cheap", "last/cheap"]

    def test_flow_order_source_first(self):
        path = compose_qcs(PATH2, two_hop_catalog(), USER, WEIGHTS)
        assert path.instances[0].service == "src"
        assert path.instances[-1].service == "last"

    def test_total_aggregates_resources_and_bandwidth(self):
        path = compose_qcs(PATH2, two_hop_catalog(), USER, WEIGHTS)
        assert path.total.resources == rv(30, 30)
        assert path.total.bandwidth == 300.0

    def test_score_matches_weight_profile(self):
        path = compose_qcs(PATH2, two_hop_catalog(), USER, WEIGHTS)
        assert np.isclose(path.score, WEIGHTS.score(path.total))

    def test_edge_bandwidths_selection_order(self):
        path = compose_qcs(PATH2, two_hop_catalog(), USER, WEIGHTS)
        # selection order = user side first: last's bw, then src's bw.
        assert path.edge_bandwidths() == (200.0, 100.0)

    def test_user_requirement_enforced_at_last_hop(self):
        cat = two_hop_catalog()
        strict_user = QoSVector(format="final", quality=Interval(3, 3))
        for i, it in enumerate(cat["last"]):
            cat["last"][i] = inst(
                it.instance_id, "last", "mid", "final", quality=2,
                cpu=it.resources.values[0],
            )
        with pytest.raises(CompositionError):
            compose_qcs(PATH2, cat, strict_user, WEIGHTS)

    def test_no_consistent_chain_raises(self):
        cat = {
            "src": [inst("s", "src", "nothing", "A")],
            "last": [inst("l", "last", "B", "final")],  # wants B, src gives A
        }
        with pytest.raises(CompositionError):
            compose_qcs(PATH2, cat, USER, WEIGHTS)

    def test_single_hop_aggregation(self):
        """Content retrieval: a single-hop path (paper §2.1)."""
        path1 = AbstractServicePath("retrieval", ("store",))
        cat = {
            "store": [
                inst("store/a", "store", "n/a", "final", cpu=100),
                inst("store/b", "store", "n/a", "final", cpu=10),
            ]
        }
        path = compose_qcs(path1, cat, USER, WEIGHTS)
        assert [i.instance_id for i in path.instances] == ["store/b"]
        assert path.hops == 1

    def test_dijkstra_and_dp_agree(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            n_services = int(rng.integers(2, 6))
            services = tuple(f"s{k}" for k in range(n_services))
            cat = {}
            for k, svc in enumerate(services):
                fmt_in = f"if{k}"
                fmt_out = f"if{k+1}" if k < n_services - 1 else "final"
                cat[svc] = [
                    inst(
                        f"{svc}/{j}",
                        svc,
                        fmt_in,
                        fmt_out,
                        cpu=float(rng.uniform(1, 900)),
                        mem=float(rng.uniform(1, 900)),
                        bw=float(rng.uniform(1e3, 9e6)),
                    )
                    for j in range(int(rng.integers(1, 8)))
                ]
            apath = AbstractServicePath(f"t{trial}", services)
            a = compose_qcs(apath, cat, USER, WEIGHTS, method="dp")
            b = compose_qcs(apath, cat, USER, WEIGHTS, method="dijkstra")
            assert [i.instance_id for i in a.instances] == [
                i.instance_id for i in b.instances
            ]
            assert np.isclose(a.score, b.score)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            compose_qcs(PATH2, two_hop_catalog(), USER, WEIGHTS, method="bogus")

    def test_exhaustive_agreement_on_small_instances(self):
        """QCS result equals brute-force minimum over all consistent paths."""
        rng = np.random.default_rng(7)
        for trial in range(20):
            services = ("a", "b", "c")
            cat = {}
            fmts = ["x", "y"]
            for k, svc in enumerate(services):
                cat[svc] = [
                    inst(
                        f"{svc}/{j}",
                        svc,
                        fmt_in=str(rng.choice(fmts)) + str(k),
                        fmt_out=(str(rng.choice(fmts)) + str(k + 1))
                        if k < 2
                        else "final",
                        cpu=float(rng.uniform(1, 500)),
                        mem=float(rng.uniform(1, 500)),
                        bw=float(rng.uniform(1e3, 1e6)),
                    )
                    for j in range(3)
                ]
            apath = AbstractServicePath(f"t{trial}", services)
            # Brute force over the 27 combinations.
            best = None
            from repro.core.qos import satisfies

            for ia in cat["a"]:
                for ib in cat["b"]:
                    for ic in cat["c"]:
                        if not satisfies(ic.qout, USER):
                            continue
                        if not satisfies(ib.qout, ic.qin):
                            continue
                        if not satisfies(ia.qout, ib.qin):
                            continue
                        total = (
                            ResourceTuple(ia.resources, ia.bandwidth)
                            + ResourceTuple(ib.resources, ib.bandwidth)
                            + ResourceTuple(ic.resources, ic.bandwidth)
                        )
                        s = WEIGHTS.score(total)
                        if best is None or s < best[0]:
                            best = (s, (ia, ib, ic))
            if best is None:
                with pytest.raises(CompositionError):
                    compose_qcs(apath, cat, USER, WEIGHTS)
            else:
                got = compose_qcs(apath, cat, USER, WEIGHTS)
                assert np.isclose(got.score, best[0])
