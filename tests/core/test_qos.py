"""Unit tests for QoS vectors and the Eq. 1 'satisfy' relation."""

import pytest

from repro.core.qos import Interval, QoSVector, satisfies


class TestInterval:
    def test_bounds(self):
        iv = Interval(10, 30)
        assert iv.lo == 10 and iv.hi == 30 and iv.width == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_degenerate_allowed(self):
        assert Interval(5, 5).width == 0

    def test_contains_value(self):
        iv = Interval(10, 30)
        assert iv.contains_value(10)
        assert iv.contains_value(30)
        assert iv.contains_value(20)
        assert not iv.contains_value(9.999)
        assert not iv.contains_value(30.001)

    def test_contains_interval(self):
        assert Interval(0, 100).contains_interval(Interval(10, 20))
        assert Interval(10, 20).contains_interval(Interval(10, 20))
        assert not Interval(10, 20).contains_interval(Interval(5, 15))
        assert not Interval(10, 20).contains_interval(Interval(15, 25))

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 10).intersect(Interval(10, 20)) == Interval(10, 10)
        assert Interval(0, 10).intersect(Interval(11, 20)) is None


class TestQoSVector:
    def test_mapping_protocol(self):
        q = QoSVector(format="MPEG", rate=Interval(10, 30))
        assert q["format"] == "MPEG"
        assert q.dim == 2
        assert set(q) == {"format", "rate"}

    def test_from_mapping_and_kwargs(self):
        q = QoSVector({"a": 1}, b=2)
        assert q["a"] == 1 and q["b"] == 2

    def test_kwargs_override_mapping(self):
        q = QoSVector({"a": 1}, a=9)
        assert q["a"] == 9

    def test_rejects_bad_types(self):
        with pytest.raises(TypeError):
            QoSVector(x=[1, 2])
        with pytest.raises(TypeError):
            QoSVector(x=True)

    def test_equality_and_hash(self):
        a = QoSVector(format="MPEG", q=Interval(1, 3))
        b = QoSVector(q=Interval(1, 3), format="MPEG")
        assert a == b
        assert hash(a) == hash(b)

    def test_merged_with(self):
        a = QoSVector(x=1, y=2)
        b = QoSVector(y=9, z=3)
        m = a.merged_with(b)
        assert m == QoSVector(x=1, y=9, z=3)

    def test_as_tuple_sorted(self):
        q = QoSVector(b=2, a=1)
        assert q.as_tuple() == (("a", 1), ("b", 2))


class TestSatisfies:
    """Eq. 1: forall dims of Qin, the offered Qout dim must match."""

    def test_single_value_equal(self):
        assert satisfies(QoSVector(format="MPEG"), QoSVector(format="MPEG"))

    def test_single_value_unequal(self):
        assert not satisfies(QoSVector(format="JPEG"), QoSVector(format="MPEG"))

    def test_numeric_single_value(self):
        assert satisfies(QoSVector(res=480), QoSVector(res=480.0))
        assert not satisfies(QoSVector(res=480), QoSVector(res=720))

    def test_missing_dimension_fails(self):
        assert not satisfies(QoSVector(), QoSVector(format="MPEG"))

    def test_extra_offered_dimensions_ignored(self):
        offered = QoSVector(format="MPEG", extra="whatever")
        assert satisfies(offered, QoSVector(format="MPEG"))

    def test_scalar_within_required_range(self):
        assert satisfies(QoSVector(rate=20), QoSVector(rate=Interval(10, 30)))
        assert not satisfies(QoSVector(rate=35), QoSVector(rate=Interval(10, 30)))

    def test_range_within_required_range(self):
        assert satisfies(
            QoSVector(rate=Interval(15, 25)), QoSVector(rate=Interval(10, 30))
        )
        assert not satisfies(
            QoSVector(rate=Interval(5, 25)), QoSVector(rate=Interval(10, 30))
        )

    def test_range_offered_for_single_requirement(self):
        # Only a degenerate interval equals a single value.
        assert satisfies(QoSVector(rate=Interval(20, 20)), QoSVector(rate=20))
        assert not satisfies(QoSVector(rate=Interval(10, 30)), QoSVector(rate=20))

    def test_string_never_satisfies_range(self):
        assert not satisfies(QoSVector(rate="fast"), QoSVector(rate=Interval(0, 1)))

    def test_empty_requirement_always_satisfied(self):
        assert satisfies(QoSVector(), QoSVector())
        assert satisfies(QoSVector(anything=1), QoSVector())

    def test_multi_dimension_all_must_hold(self):
        offered = QoSVector(format="MPEG", rate=25, res="640x480")
        assert satisfies(
            offered,
            QoSVector(format="MPEG", rate=Interval(10, 30)),
        )
        assert not satisfies(
            offered,
            QoSVector(format="MPEG", rate=Interval(10, 20)),
        )

    def test_method_form_matches_function(self):
        offered = QoSVector(format="MPEG")
        required = QoSVector(format="MPEG")
        assert offered.satisfies(required) == satisfies(offered, required)
