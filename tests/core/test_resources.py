"""Unit tests for resource vectors, tuples and the Def. 3.1 comparison."""

import numpy as np
import pytest

from repro.core.resources import ResourceTuple, ResourceVector, WeightProfile

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def profile(w_cpu=0.4, w_mem=0.3, w_bw=0.3, maxima=(1000.0, 1000.0), bmax=1e7):
    return WeightProfile(NAMES, [w_cpu, w_mem], w_bw, maxima, bmax)


class TestResourceVector:
    def test_roundtrip(self):
        v = rv(10, 20)
        assert v.names == NAMES
        assert v.dim == 2
        assert list(v.values) == [10.0, 20.0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ResourceVector(NAMES, [1.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rv(-1, 5)

    def test_add(self):
        assert rv(1, 2) + rv(3, 4) == rv(4, 6)

    def test_sub_can_go_negative(self):
        d = rv(1, 5) - rv(3, 1)
        assert list(d.values) == [-2.0, 4.0]

    def test_scalar_mul(self):
        assert 2 * rv(1, 2) == rv(2, 4)
        assert rv(1, 2) * 3 == rv(3, 6)

    def test_dimension_mismatch_raises(self):
        other = ResourceVector(("cpu",), [1.0])
        with pytest.raises(ValueError):
            rv(1, 2) + other

    def test_covers(self):
        assert rv(10, 10).covers(rv(10, 10))
        assert rv(10, 10).covers(rv(5, 10))
        assert not rv(10, 10).covers(rv(11, 0))

    def test_ratio_to(self):
        r = rv(10, 50).ratio_to(rv(5, 100))
        assert list(r) == [2.0, 0.5]

    def test_ratio_to_zero_requirement_is_inf(self):
        r = rv(10, 50).ratio_to(rv(0, 100))
        assert r[0] == np.inf

    def test_zeros_like(self):
        z = ResourceVector.zeros_like(rv(3, 4))
        assert z == rv(0, 0)

    def test_copy_is_independent(self):
        a = rv(1, 2)
        b = a.copy()
        b.values[0] = 99
        assert a.values[0] == 1.0

    def test_hashable(self):
        assert hash(rv(1, 2)) == hash(rv(1, 2))


class TestResourceTuple:
    def test_add(self):
        t = ResourceTuple(rv(1, 2), 100.0) + ResourceTuple(rv(3, 4), 50.0)
        assert t.resources == rv(4, 6)
        assert t.bandwidth == 150.0

    def test_zero(self):
        z = ResourceTuple.zero(NAMES)
        assert z.resources == rv(0, 0) and z.bandwidth == 0.0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ResourceTuple(rv(1, 1), -5.0)


class TestWeightProfile:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WeightProfile(NAMES, [0.5, 0.5], 0.5, (1000, 1000), 1e7)

    def test_normalize_flag(self):
        p = WeightProfile(NAMES, [1, 1], 2, (1000, 1000), 1e7, normalize=True)
        assert np.isclose(p.weights.sum() + p.bandwidth_weight, 1.0)
        assert p.bandwidth_weight == 0.5

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightProfile(NAMES, [-0.1, 0.6], 0.5, (1000, 1000), 1e7)

    def test_uniform(self):
        p = WeightProfile.uniform(NAMES, (1000, 1000), 1e7)
        assert np.allclose(p.weights, 1 / 3)
        assert np.isclose(p.bandwidth_weight, 1 / 3)

    def test_nonpositive_maxima_rejected(self):
        with pytest.raises(ValueError):
            profile(maxima=(0.0, 1000.0))

    def test_score_formula(self):
        p = profile(w_cpu=0.4, w_mem=0.3, w_bw=0.3, maxima=(100, 200), bmax=1000)
        t = ResourceTuple(rv(50, 100), 500)
        # 0.4*50/100 + 0.3*100/200 + 0.3*500/1000
        assert np.isclose(p.score(t), 0.2 + 0.15 + 0.15)

    def test_score_dimension_check(self):
        p = profile()
        t = ResourceTuple(ResourceVector(("cpu",), [1.0]), 0.0)
        with pytest.raises(ValueError):
            p.score(t)

    def test_compare_matches_def_3_1(self):
        p = profile()
        small = ResourceTuple(rv(10, 10), 100)
        big = ResourceTuple(rv(500, 500), 1e6)
        assert p.compare(big, small) == 1
        assert p.compare(small, big) == -1
        assert p.compare(small, small) == 0

    def test_compare_consistent_with_score(self):
        p = profile()
        rng = np.random.default_rng(0)
        for _ in range(100):
            a = ResourceTuple(rv(*rng.uniform(0, 1000, 2)), rng.uniform(0, 1e7))
            b = ResourceTuple(rv(*rng.uniform(0, 1000, 2)), rng.uniform(0, 1e7))
            cmp_sign = p.compare(a, b)
            score_sign = np.sign(p.score(a) - p.score(b))
            assert cmp_sign == score_sign or (
                cmp_sign == 0 and abs(p.score(a) - p.score(b)) < 1e-12
            )

    def test_bandwidth_only_profile(self):
        p = WeightProfile(NAMES, [0, 0], 1.0, (1000, 1000), 1000)
        hi = ResourceTuple(rv(999, 999), 10)
        lo = ResourceTuple(rv(0, 0), 20)
        # Only bandwidth counts: 20 > 10.
        assert p.compare(lo, hi) == 1
