"""Unit tests for the random and fixed baseline strategies."""

import numpy as np
import pytest

from repro.core.baselines import _viable_nodes, random_consistent_path
from repro.core.composition import CompositionError, ConsistencyGraph
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e6)
USER = QoSVector(format="final", quality=Interval(1, 3))


def inst(iid, service, fmt_in, fmt_out, cpu=10.0, quality=3):
    return ServiceInstance(
        iid, service,
        qin=QoSVector(format=fmt_in, quality=Interval(quality, 3)),
        qout=QoSVector(format=fmt_out, quality=quality),
        resources=ResourceVector(NAMES, [cpu, cpu]),
        bandwidth=100.0,
    )


PATH = AbstractServicePath("app", ("src", "last"))


def graph_with_dead_end():
    """One 'last' candidate has no consistent predecessor (dead end)."""
    cat = {
        "src": [inst("src/0", "src", "o", "mid")],
        "last": [
            inst("last/ok", "last", "mid", "final"),
            inst("last/dead", "last", "OTHER", "final"),
        ],
    }
    return ConsistencyGraph(PATH, cat, USER, WEIGHTS)


class TestViableNodes:
    def test_source_layer_always_viable(self):
        g = graph_with_dead_end()
        assert (2, 0) in _viable_nodes(g)

    def test_dead_end_excluded(self):
        g = graph_with_dead_end()
        viable = _viable_nodes(g)
        # last/dead (layer 1, index 1) cannot reach the source.
        assert (1, 1) not in viable
        assert (1, 0) in viable
        assert (0, 0) in viable

    def test_unsatisfiable_sink(self):
        cat = {
            "src": [inst("src/0", "src", "o", "mid")],
            "last": [inst("last/0", "last", "mid", "WRONG")],
        }
        g = ConsistencyGraph(PATH, cat, USER, WEIGHTS)
        assert (0, 0) not in _viable_nodes(g)


class TestRandomConsistentPath:
    def test_never_dead_ends(self):
        g = graph_with_dead_end()
        rng = np.random.default_rng(0)
        for _ in range(50):
            path = random_consistent_path(g, rng)
            assert [i.instance_id for i in path.instances] == [
                "src/0", "last/ok",
            ]

    def test_raises_when_nothing_viable(self):
        cat = {
            "src": [inst("src/0", "src", "o", "mid")],
            "last": [inst("last/0", "last", "OTHER", "final")],
        }
        g = ConsistencyGraph(PATH, cat, USER, WEIGHTS)
        with pytest.raises(CompositionError):
            random_consistent_path(g, np.random.default_rng(0))

    def test_samples_spread_over_paths(self):
        cat = {
            "src": [inst(f"src/{j}", "src", "o", "mid") for j in range(4)],
            "last": [inst(f"last/{j}", "last", "mid", "final") for j in range(4)],
        }
        g = ConsistencyGraph(PATH, cat, USER, WEIGHTS)
        rng = np.random.default_rng(1)
        seen = {
            tuple(i.instance_id for i in random_consistent_path(g, rng).instances)
            for _ in range(100)
        }
        assert len(seen) > 8  # 16 possible; random walk reaches most

    def test_ignores_resource_cost(self):
        """The walk picks expensive instances as often as cheap ones."""
        cat = {
            "src": [
                inst("src/cheap", "src", "o", "mid", cpu=1),
                inst("src/costly", "src", "o", "mid", cpu=900),
            ],
            "last": [inst("last/0", "last", "mid", "final")],
        }
        g = ConsistencyGraph(PATH, cat, USER, WEIGHTS)
        rng = np.random.default_rng(2)
        picks = [
            random_consistent_path(g, rng).instances[0].instance_id
            for _ in range(200)
        ]
        costly_share = picks.count("src/costly") / len(picks)
        assert 0.35 < costly_share < 0.65

    def test_total_matches_chosen_instances(self):
        g = graph_with_dead_end()
        path = random_consistent_path(g, np.random.default_rng(0))
        manual = sum(i.resources.values[0] for i in path.instances)
        assert path.total.resources.values[0] == pytest.approx(manual)
