"""Tests for the composition memoization (edge/cost caches).

The caches are a pure optimization; these tests pin that cached and
uncached composition are indistinguishable, including across repeated
requests with different user requirements.
"""

import numpy as np
import pytest

from repro.core.composition import ConsistencyGraph, compose_qcs
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e6)


def make_catalog(seed=0, n_services=3, per_layer=8):
    rng = np.random.default_rng(seed)
    services = tuple(f"s{k}" for k in range(n_services))
    cat = {}
    for k, svc in enumerate(services):
        cat[svc] = []
        for j in range(per_layer):
            fmt_in = f"if{k}/{rng.integers(2)}"
            fmt_out = (
                f"if{k+1}/{rng.integers(2)}" if k < n_services - 1 else "final"
            )
            q = int(rng.integers(1, 4))
            cat[svc].append(ServiceInstance(
                f"{svc}/{j}", svc,
                qin=QoSVector(format=fmt_in, quality=Interval(q, 3)),
                qout=QoSVector(format=fmt_out, quality=q),
                resources=ResourceVector(NAMES, rng.uniform(1, 500, 2)),
                bandwidth=float(rng.uniform(1e3, 5e4)),
            ))
    return AbstractServicePath("cachetest", services), cat


USERS = [
    QoSVector(format="final", quality=Interval(1, 3)),
    QoSVector(format="final", quality=Interval(2, 3)),
    QoSVector(format="final", quality=Interval(3, 3)),
]


class TestCacheEquivalence:
    def test_cached_equals_uncached_across_requirements(self):
        path, cat = make_catalog()
        edge_cache, cost_cache = {}, {}
        for user in USERS * 3:  # repeats exercise warm-cache paths
            try:
                plain = compose_qcs(path, cat, user, WEIGHTS)
            except Exception as exc:
                with pytest.raises(type(exc)):
                    compose_qcs(path, cat, user, WEIGHTS,
                                edge_cache=edge_cache, cost_cache=cost_cache)
                continue
            cached = compose_qcs(path, cat, user, WEIGHTS,
                                 edge_cache=edge_cache, cost_cache=cost_cache)
            assert [i.instance_id for i in plain.instances] == [
                i.instance_id for i in cached.instances
            ]
            assert np.isclose(plain.score, cached.score)

    def test_cache_fills_once_and_is_reused(self):
        path, cat = make_catalog()
        edge_cache, cost_cache = {}, {}
        compose_qcs(path, cat, USERS[0], WEIGHTS,
                    edge_cache=edge_cache, cost_cache=cost_cache)
        edges_after_first = len(edge_cache)
        costs_after_first = len(cost_cache)
        assert edges_after_first > 0 and costs_after_first > 0
        compose_qcs(path, cat, USERS[1], WEIGHTS,
                    edge_cache=edge_cache, cost_cache=cost_cache)
        # Interior edges are identical across user requirements:
        # nothing new to learn.
        assert len(edge_cache) == edges_after_first

    def test_sink_edges_never_cached(self):
        """Different users get different sink consistency: a strict user
        must not see a permissive user's cached sink edges."""
        path, cat = make_catalog(seed=4)
        edge_cache, cost_cache = {}, {}
        loose = compose_qcs(path, cat, USERS[0], WEIGHTS,
                            edge_cache=edge_cache, cost_cache=cost_cache)
        # The strict requirement may or may not be satisfiable, but its
        # graph must be built against Interval(3,3), not the cached loose
        # edges.
        g = ConsistencyGraph(path, cat, USERS[2], WEIGHTS,
                             edge_cache=edge_cache, cost_cache=cost_cache)
        for (_j, _s, _t) in g.edges.get((0, 0), []):
            pass  # constructing at all without KeyErrors is the check
        for j, _score, _t in g.edges.get((0, 0), []):
            inst = g.layers[1][j]
            assert inst.qout["quality"] == 3


class TestGraphStats:
    def test_node_edge_counts_consistent(self):
        path, cat = make_catalog(seed=2)
        g = ConsistencyGraph(path, cat, USERS[0], WEIGHTS)
        assert g.n_nodes == 1 + sum(len(v) for v in cat.values())
        assert g.n_edges == sum(len(v) for v in g.edges.values())

    def test_dense_catalog_has_full_interior_edges(self):
        """All-compatible formats/qualities give complete bipartite layers."""
        services = ("a", "b")
        cat = {
            "a": [ServiceInstance(
                f"a/{j}", "a",
                qin=QoSVector(format="origin", quality=Interval(1, 3)),
                qout=QoSVector(format="mid", quality=3),
                resources=ResourceVector(NAMES, [1, 1]), bandwidth=1.0,
            ) for j in range(4)],
            "b": [ServiceInstance(
                f"b/{j}", "b",
                qin=QoSVector(format="mid", quality=Interval(1, 3)),
                qout=QoSVector(format="final", quality=3),
                resources=ResourceVector(NAMES, [1, 1]), bandwidth=1.0,
            ) for j in range(5)],
        }
        path = AbstractServicePath("dense", services)
        g = ConsistencyGraph(path, cat, USERS[0], WEIGHTS)
        # sink->b: 5 edges; each b->a: 4 edges.
        assert g.n_edges == 5 + 5 * 4
