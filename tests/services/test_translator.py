"""Unit tests for the analytic QoS -> resource translator."""

import numpy as np
import pytest

from repro.services.translator import DEFAULT_BANDWIDTH_RANGES, AnalyticTranslator


class TestValidation:
    def test_bad_base_demand(self):
        with pytest.raises(ValueError):
            AnalyticTranslator(base_demand=(0.0, 10.0))
        with pytest.raises(ValueError):
            AnalyticTranslator(base_demand=(50.0, 10.0))

    def test_negative_quality_factor(self):
        with pytest.raises(ValueError):
            AnalyticTranslator(quality_factor=-0.1)

    def test_bad_bandwidth_range(self):
        with pytest.raises(ValueError):
            AnalyticTranslator(bandwidth_ranges={1: (0.0, 100.0)})


class TestDraws:
    def test_resources_within_scaled_envelope(self):
        t = AnalyticTranslator(base_demand=(10, 50), quality_factor=0.5)
        rng = np.random.default_rng(0)
        for quality in (1, 2, 3):
            scale = t.quality_scale(quality)
            for _ in range(50):
                r = t.resources_for(quality, rng)
                assert np.all(r.values >= 10 * scale - 1e-9)
                assert np.all(r.values <= 50 * scale + 1e-9)

    def test_quality_scale_monotone(self):
        t = AnalyticTranslator()
        assert t.quality_scale(1) < t.quality_scale(2) < t.quality_scale(3)

    def test_bandwidth_within_range(self):
        t = AnalyticTranslator()
        rng = np.random.default_rng(1)
        for quality, (lo, hi) in DEFAULT_BANDWIDTH_RANGES.items():
            for _ in range(50):
                b = t.bandwidth_for(quality, rng)
                assert lo <= b <= hi

    def test_unknown_quality_rejected(self):
        t = AnalyticTranslator()
        with pytest.raises(ValueError):
            t.bandwidth_for(42, np.random.default_rng(0))

    def test_resource_names_respected(self):
        t = AnalyticTranslator(resource_names=("cpu", "memory", "disk"))
        r = t.resources_for(1, np.random.default_rng(0))
        assert r.names == ("cpu", "memory", "disk")

    def test_envelopes(self):
        t = AnalyticTranslator(base_demand=(10, 50), quality_factor=0.5)
        assert t.max_resource_demand() == 50 * t.quality_scale(3)
        assert t.max_bandwidth_demand() == max(
            hi for _, hi in DEFAULT_BANDWIDTH_RANGES.values()
        )

    def test_deterministic_under_seeded_rng(self):
        t = AnalyticTranslator()
        a = t.resources_for(2, np.random.default_rng(5))
        b = t.resources_for(2, np.random.default_rng(5))
        assert a == b
