"""Unit tests for catalog generation and the mutable replica map."""

import numpy as np
import pytest

from repro.core.qos import Interval
from repro.services.applications import default_applications
from repro.services.catalog import CatalogConfig, generate_catalog


@pytest.fixture()
def catalog():
    return generate_catalog(
        default_applications(),
        peer_ids=range(500),
        rng=np.random.default_rng(0),
        config=CatalogConfig(
            instances_per_service=(10, 20), replicas_per_instance=(40, 80)
        ),
    )


class TestConfig:
    def test_bad_ranges(self):
        with pytest.raises(ValueError):
            CatalogConfig(instances_per_service=(0, 5))
        with pytest.raises(ValueError):
            CatalogConfig(replicas_per_instance=(10, 5))

    def test_bad_quality_weights(self):
        with pytest.raises(ValueError):
            CatalogConfig(quality_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            CatalogConfig(quality_weights=(0.5, 0.4, 0.2))


class TestGeneration:
    def test_instances_per_service_in_range(self, catalog):
        for service, instances in catalog.by_service.items():
            assert 10 <= len(instances) <= 20, service

    def test_replicas_per_instance_in_range(self, catalog):
        for iid in catalog.instances:
            assert 40 <= len(catalog.hosts(iid)) <= 80, iid

    def test_every_service_of_every_app_covered(self, catalog):
        for app in catalog.applications:
            for service in app.services:
                assert catalog.candidates(service)

    def test_instance_qos_vocabulary(self, catalog):
        """Formats come from the owning app's interface vocabularies and
        input quality floors equal output quality."""
        for app in catalog.applications:
            for k, service in enumerate(app.services):
                in_formats = set(app.interface_formats(k - 1))
                out_formats = set(app.interface_formats(k))
                for inst in catalog.candidates(service):
                    assert inst.qin["format"] in in_formats
                    assert inst.qout["format"] in out_formats
                    q = inst.qout["quality"]
                    assert inst.qin["quality"] == Interval(q, 3)

    def test_quality_distribution_biased_high(self, catalog):
        qualities = [i.qout["quality"] for i in catalog.instances.values()]
        share3 = sum(1 for q in qualities if q == 3) / len(qualities)
        assert 0.4 < share3 < 0.6  # configured weight 0.5

    def test_hosted_by_consistent_with_replicas(self, catalog):
        for iid, peers in catalog.replicas.items():
            for pid in peers:
                assert iid in catalog.hosted_instances(pid)

    def test_requires_peers(self):
        with pytest.raises(ValueError):
            generate_catalog(
                default_applications()[:1], [], np.random.default_rng(0)
            )

    def test_reproducible(self):
        a = generate_catalog(
            default_applications()[:2], range(100), np.random.default_rng(9)
        )
        b = generate_catalog(
            default_applications()[:2], range(100), np.random.default_rng(9)
        )
        assert set(a.instances) == set(b.instances)
        for iid in a.instances:
            assert a.instances[iid].qout == b.instances[iid].qout
            assert a.replicas[iid] == b.replicas[iid]


class TestChurnMutation:
    def test_remove_peer_clears_replicas(self, catalog):
        pid = next(iter(catalog.hosted_by))
        hosted = set(catalog.hosted_instances(pid))
        catalog.remove_peer(pid)
        assert catalog.hosted_instances(pid) == ()
        for iid in hosted:
            assert pid not in catalog.hosts(iid)

    def test_remove_unknown_peer_noop(self, catalog):
        catalog.remove_peer(10**9)  # must not raise

    def test_assign_new_peer_typical_share(self, catalog):
        mean = catalog.replicas_per_peer
        rng = np.random.default_rng(1)
        counts = []
        for k in range(30):
            pid = 10_000 + k
            catalog.assign_new_peer(pid, rng)
            counts.append(len(catalog.hosted_instances(pid)))
            for iid in catalog.hosted_instances(pid):
                assert pid in catalog.hosts(iid)
        assert abs(np.mean(counts) - mean) < mean  # same order of magnitude

    def test_assign_existing_peer_rejected(self, catalog):
        pid = next(iter(catalog.hosted_by))
        with pytest.raises(ValueError):
            catalog.assign_new_peer(pid, np.random.default_rng(0))
