"""Unit tests for the request front end (QoS compiler)."""

import numpy as np
import pytest

from repro.core.qos import Interval
from repro.services.applications import default_applications
from repro.services.qoscompiler import QoSCompiler, UserRequest


def make_request(**kw):
    defaults = dict(
        request_id=0,
        peer_id=1,
        application="video-on-demand",
        qos_level="high",
        session_duration=10.0,
        arrival_time=0.0,
    )
    defaults.update(kw)
    return UserRequest(**defaults)


@pytest.fixture()
def compiler():
    return QoSCompiler.from_templates(default_applications())


class TestUserRequest:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            make_request(qos_level="ultra")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_request(session_duration=0.0)


class TestCompile:
    def test_path_matches_template(self, compiler):
        path, _ = compiler.compile(make_request(), np.random.default_rng(0))
        assert path.application == "video-on-demand"
        assert path.services == ("video-server", "transcoder", "video-player")

    def test_quality_requirement_from_level(self, compiler):
        for level, floor in (("low", 1), ("average", 2), ("high", 3)):
            _, qos = compiler.compile(
                make_request(qos_level=level), np.random.default_rng(0)
            )
            assert qos["quality"] == Interval(floor, 3)

    def test_format_drawn_from_user_vocabulary(self, compiler):
        app = {a.name: a for a in default_applications()}["video-on-demand"]
        for seed in range(10):
            _, qos = compiler.compile(make_request(), np.random.default_rng(seed))
            assert qos["format"] in app.user_formats()

    def test_explicit_format_respected(self, compiler):
        app = {a.name: a for a in default_applications()}["video-on-demand"]
        fmt = app.user_formats()[1]
        _, qos = compiler.compile(make_request(out_format=fmt))
        assert qos["format"] == fmt

    def test_foreign_format_rejected(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile(make_request(out_format="bogus-format"))

    def test_no_rng_and_no_format_rejected(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile(make_request())

    def test_unknown_application_rejected(self, compiler):
        with pytest.raises(KeyError):
            compiler.compile(
                make_request(application="no-such-app"), np.random.default_rng(0)
            )
