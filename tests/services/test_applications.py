"""Unit tests for the application templates (§4.1 workload shapes)."""

import pytest

from repro.services.applications import (
    QUALITY_LEVELS,
    ApplicationTemplate,
    default_applications,
)


class TestDefaults:
    def test_ten_applications(self):
        assert len(default_applications()) == 10

    def test_path_lengths_between_2_and_5(self):
        for app in default_applications():
            assert 2 <= app.hops <= 5

    def test_all_lengths_represented(self):
        lengths = {a.hops for a in default_applications()}
        assert lengths == {2, 3, 4, 5}

    def test_names_unique(self):
        names = [a.name for a in default_applications()]
        assert len(set(names)) == len(names)

    def test_services_globally_unique(self):
        """No two applications share an abstract service name (each app's
        catalog is generated independently)."""
        seen = set()
        for app in default_applications():
            for s in app.services:
                assert s not in seen
                seen.add(s)


class TestInterfaces:
    def test_interface_format_count(self):
        app = ApplicationTemplate("x", ("a", "b"), formats_per_interface=4)
        assert len(app.interface_formats(0)) == 4
        assert len(app.interface_formats(1)) == 4

    def test_origin_interface_single_format(self):
        app = ApplicationTemplate("x", ("a", "b"))
        assert len(app.interface_formats(-1)) == 1

    def test_interface_out_of_range(self):
        app = ApplicationTemplate("x", ("a", "b"))
        with pytest.raises(IndexError):
            app.interface_formats(2)

    def test_user_formats_are_final_interface(self):
        app = ApplicationTemplate("x", ("a", "b", "c"))
        assert app.user_formats() == app.interface_formats(2)

    def test_format_names_scoped_by_app(self):
        a = ApplicationTemplate("app1", ("s1x",))
        b = ApplicationTemplate("app2", ("s2x",))
        assert not set(a.interface_formats(0)) & set(b.interface_formats(0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ApplicationTemplate("x", ("a",), formats_per_interface=0)


def test_quality_levels_contract():
    assert QUALITY_LEVELS == {"low": 1, "average": 2, "high": 3}
