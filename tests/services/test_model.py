"""Unit tests for the service model primitives."""

import pytest

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.services.model import AbstractServicePath, ServiceInstance, instance_group

NAMES = ("cpu", "memory")


def inst(iid, service):
    return ServiceInstance(
        iid, service, QoSVector(), QoSVector(),
        ResourceVector(NAMES, [1, 1]), 10.0,
    )


class TestServiceInstance:
    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ServiceInstance(
                "x/0", "x", QoSVector(), QoSVector(),
                ResourceVector(NAMES, [1, 1]), -1.0,
            )

    def test_frozen(self):
        i = inst("x/0", "x")
        with pytest.raises(Exception):
            i.bandwidth = 5.0


class TestAbstractServicePath:
    def test_flow_order_accessors(self):
        p = AbstractServicePath("vod", ("server", "transcoder", "player"))
        assert p.source == "server"
        assert p.last == "player"
        assert p.hops == 3
        assert len(p) == 3
        assert list(p) == ["server", "transcoder", "player"]

    def test_reversed_is_selection_order(self):
        p = AbstractServicePath("vod", ("server", "player"))
        assert p.reversed() == ("player", "server")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AbstractServicePath("x", ())

    def test_duplicate_service_rejected(self):
        with pytest.raises(ValueError):
            AbstractServicePath("x", ("a", "b", "a"))

    def test_single_hop_path(self):
        p = AbstractServicePath("retrieval", ("store",))
        assert p.source == p.last == "store"
        assert p.hops == 1


class TestInstanceGroup:
    def test_groups_by_service(self):
        instances = [inst("a/0", "a"), inst("a/1", "a"), inst("b/0", "b")]
        groups = instance_group(instances)
        assert {i.instance_id for i in groups["a"]} == {"a/0", "a/1"}
        assert {i.instance_id for i in groups["b"]} == {"b/0"}

    def test_empty(self):
        assert instance_group([]) == {}
