"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Process, SimulationError, Simulator


def test_process_runs_and_returns():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "done"

    p = Process(sim, proc())
    sim.run()
    assert p.triggered and p.ok
    assert p.value == "done"
    assert sim.now == 3.0


def test_process_receives_timeout_value():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        got.append(v)

    Process(sim, proc())
    sim.run()
    assert got == ["hello"]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)


def test_process_starts_at_current_time_not_before():
    sim = Simulator()
    started_at = []

    def proc():
        started_at.append(sim.now)
        yield sim.timeout(0.0)

    sim.call_at(5.0, lambda: Process(sim, proc()))
    sim.run()
    assert started_at == [5.0]


def test_processes_interleave():
    sim = Simulator()
    trace = []

    def ticker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            trace.append((name, sim.now))

    Process(sim, ticker("a", 1.0))
    Process(sim, ticker("b", 1.5))
    sim.run()
    # At t=3.0 both tickers fire; b's timeout was scheduled earlier
    # (at t=1.5 vs a's at t=2.0) so FIFO tie-breaking runs b first.
    assert trace == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_process_can_wait_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent():
        v = yield Process(sim, child())
        return v + 1

    p = Process(sim, parent())
    sim.run()
    assert p.value == 43


def test_process_propagates_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("kaput")

    p = Process(sim, bad())
    sim.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, RuntimeError)


def test_waiting_on_failed_event_throws_into_process():
    sim = Simulator()
    caught = []

    def proc(ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    ev = sim.event()
    Process(sim, proc(ev))
    ev.fail(ValueError("oops"))
    sim.run()
    assert caught == ["oops"]


def test_interrupt_wakes_process():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as i:
            trace.append(("interrupted", i.cause, sim.now))

    p = Process(sim, sleeper())
    sim.call_at(3.0, lambda: p.interrupt("wakeup"))
    sim.run()
    assert trace == [("interrupted", "wakeup", 3.0)]


def test_uncaught_interrupt_finishes_process_with_cause():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    p = Process(sim, sleeper())
    sim.call_at(1.0, lambda: p.interrupt("gone"))
    sim.run()
    assert p.triggered and p.ok
    assert p.value == "gone"


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.0)

    p = Process(sim, quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_stale_wakeup_after_interrupt_ignored():
    """The original timeout firing after an interrupt must not resume twice."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
            yield sim.timeout(10.0)
            resumes.append("after")

    p = Process(sim, sleeper())
    sim.call_at(1.0, lambda: p.interrupt())
    sim.run()
    assert resumes == ["interrupt", "after"]


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    p = Process(sim, proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_yield_non_event_raises():
    sim = Simulator()

    def proc():
        yield 123

    p = Process(sim, proc())
    sim.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, TypeError)
