"""Unit tests for named RNG streams."""

import numpy as np

from repro.sim import RngStreams
from repro.sim.rng import derive_seed


def test_same_name_same_stream_object():
    r = RngStreams(1)
    assert r.stream("a") is r.stream("a")


def test_different_names_different_sequences():
    r = RngStreams(1)
    a = r.fresh("a").random(8)
    b = r.fresh("b").random(8)
    assert not np.allclose(a, b)


def test_reproducible_across_instances():
    a = RngStreams(7).fresh("workload").random(16)
    b = RngStreams(7).fresh("workload").random(16)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).fresh("x").random(8)
    b = RngStreams(2).fresh("x").random(8)
    assert not np.allclose(a, b)


def test_fresh_does_not_share_state_with_stream():
    r = RngStreams(3)
    s = r.stream("x")
    s.random(100)  # advance
    f = r.fresh("x")
    expected = RngStreams(3).fresh("x").random(4)
    assert np.array_equal(f.random(4), expected)


def test_spawn_isolated_child():
    r = RngStreams(5)
    c1 = r.spawn("trial-1").fresh("x").random(4)
    c2 = r.spawn("trial-2").fresh("x").random(4)
    parent = r.fresh("x").random(4)
    assert not np.allclose(c1, c2)
    assert not np.allclose(c1, parent)


def test_derive_seed_stable():
    assert derive_seed(42, "abc") == derive_seed(42, "abc")
    assert derive_seed(42, "abc") != derive_seed(42, "abd")
    assert derive_seed(42, "abc") != derive_seed(43, "abc")


def test_derive_seed_is_64bit_int():
    s = derive_seed(0, "stream")
    assert isinstance(s, int)
    assert 0 <= s < 2**64
