"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_call_at_runs_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0]


def test_call_in_is_relative():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: sim.call_in(2.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [3.0]


def test_call_at_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    for t in (5.0, 1.0, 3.0):
        sim.call_at(t, lambda t=t: seen.append(t))
    sim.run()
    assert seen == [1.0, 3.0, 5.0]


def test_simultaneous_events_fifo():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_at(1.0, lambda i=i: seen.append(i))
    sim.run()
    assert seen == list(range(10))


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.call_at(100.0, lambda: None)
    sim.run(until=7.0)
    assert sim.now == 7.0
    assert sim.queue_length == 1


def test_run_until_inclusive_boundary():
    sim = Simulator()
    seen = []
    sim.call_at(7.0, lambda: seen.append(True))
    sim.run(until=7.0)
    assert seen == [True]


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_event_value_roundtrip():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("payload")
    sim.run()
    assert ev.ok and ev.value == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_carries_exception():
    sim = Simulator()
    ev = sim.event()
    exc = ValueError("boom")
    ev.fail(exc)
    sim.run()
    assert not ev.ok
    assert ev.value is exc


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_untriggered_event_value_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(99)
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [99]


def test_callbacks_run_in_registration_order():
    sim = Simulator()
    ev = sim.timeout(1.0)
    seen = []
    ev.add_callback(lambda e: seen.append("a"))
    ev.add_callback(lambda e: seen.append("b"))
    sim.run()
    assert seen == ["a", "b"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_at(4.0, lambda: None)
    assert sim.peek() == 4.0


def test_step_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_scheduling_during_run():
    """Events scheduled by callbacks at the same instant still run."""
    sim = Simulator()
    seen = []

    def outer():
        seen.append("outer")
        sim.call_in(0.0, lambda: seen.append("inner"))

    sim.call_at(1.0, outer)
    sim.run()
    assert seen == ["outer", "inner"]


def test_many_events_scale():
    sim = Simulator()
    counter = []
    for i in range(10_000):
        sim.call_at(float(i % 100), lambda: counter.append(1))
    sim.run()
    assert len(counter) == 10_000
    assert sim.now == 99.0
