"""The determinism sanitizer: unit behaviour and run-level differentials.

The differential tests are the tentpole contract of ``repro sanitize``:

* two runs with identical seeds export **byte-identical** ledgers,
* the ``object`` and ``soa`` peer-state backends export byte-identical
  ledgers for the same seed (the ledger deliberately records no backend
  identity),
* a seed or config change is named at its *first* divergent record, and
* turning the sanitizer on leaves the telemetry export byte-identical
  (the instrument never feeds back into the run).
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.probing.prober import ProbingConfig
from repro.sim.rng import RngStreams
from repro.sim.sanitizer import (
    LEDGER_VERSION,
    Sanitizer,
    compare_ledger_files,
    compare_ledgers,
)
from repro.workload.generator import WorkloadConfig


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def records_of(sanitizer: Sanitizer):
    return [json.loads(line) for line in sanitizer.render_lines()]


class TestSanitizerUnit:
    def test_proxy_draws_match_the_raw_generator(self):
        clock = FakeClock()
        sanitizer = Sanitizer(clock)
        wrapped = sanitizer.wrap_stream("s", np.random.default_rng(7))
        raw = np.random.default_rng(7)
        assert wrapped.random() == raw.random()
        assert list(wrapped.integers(0, 10, size=5)) == list(
            raw.integers(0, 10, size=5)
        )
        assert wrapped.normal() == raw.normal()

    def test_draws_are_counted_per_stream(self):
        sanitizer = Sanitizer(FakeClock())
        a = sanitizer.wrap_stream("a", np.random.default_rng(0))
        b = sanitizer.wrap_stream("b", np.random.default_rng(1))
        a.random()
        a.random()
        b.integers(0, 4)
        final = records_of(sanitizer)[-1]
        assert final["kind"] == "final"
        assert final["streams"]["a"]["draws"] == 2
        assert final["streams"]["b"]["draws"] == 1

    def test_vectorized_call_is_one_draw_event(self):
        sanitizer = Sanitizer(FakeClock())
        s = sanitizer.wrap_stream("s", np.random.default_rng(0))
        s.random(size=1000)
        assert records_of(sanitizer)[-1]["streams"]["s"]["draws"] == 1

    def test_passthrough_attributes_are_unwrapped(self):
        sanitizer = Sanitizer(FakeClock())
        s = sanitizer.wrap_stream("s", np.random.default_rng(0))
        assert s.bit_generator.state["bit_generator"] == "PCG64"
        assert records_of(sanitizer)[-1]["streams"]["s"]["draws"] == 0

    def test_epoch_checkpoints_on_sim_clock_boundaries(self):
        clock = FakeClock()
        sanitizer = Sanitizer(clock, epoch=5.0)
        sanitizer.begin(seed=0)
        s = sanitizer.wrap_stream("s", np.random.default_rng(0))
        s.random()          # t=0: first draw checkpoints epoch 0
        clock.now = 3.0
        s.random()          # same epoch: no new checkpoint
        clock.now = 12.5
        s.random()          # epoch 10 checkpoint (lazy: epoch 5 skipped)
        epochs = [r for r in records_of(sanitizer) if r["kind"] == "epoch"]
        assert [e["t"] for e in epochs] == [0.0, 10.0]
        # The epoch-10 snapshot hashes pre-draw state: 2 draws so far.
        assert epochs[1]["streams"]["s"]["draws"] == 2

    def test_state_hash_reflects_generator_state(self):
        sanitizer = Sanitizer(FakeClock())
        s = sanitizer.wrap_stream("s", np.random.default_rng(0))
        s.random()
        first = records_of(sanitizer)[-1]["streams"]["s"]["state"]
        s.random()
        sanitizer._finalized = False  # re-finalize for the test
        second = records_of(sanitizer)[-1]["streams"]["s"]["state"]
        assert first != second

    def test_write_records_carry_provenance(self):
        clock = FakeClock()
        clock.now = 7.25
        sanitizer = Sanitizer(clock)
        sanitizer.note_write("network", "peer-depart", gen=41, n=1)
        write = [r for r in records_of(sanitizer) if r["kind"] == "write"][0]
        assert write == {
            "kind": "write", "plane": "network", "op": "peer-depart",
            "t": 7.25, "gen": 41, "n": 1,
        }

    def test_meta_record_has_no_backend_identity(self):
        sanitizer = Sanitizer(FakeClock())
        sanitizer.begin(seed=9)
        meta = records_of(sanitizer)[0]
        assert meta == {
            "kind": "meta", "version": LEDGER_VERSION,
            "seed": 9, "epoch": 5.0,
        }

    def test_double_wrap_is_rejected(self):
        sanitizer = Sanitizer(FakeClock())
        sanitizer.wrap_stream("s", np.random.default_rng(0))
        with pytest.raises(ValueError, match="already wrapped"):
            sanitizer.wrap_stream("s", np.random.default_rng(1))

    def test_export_jsonl_is_canonical(self, tmp_path):
        sanitizer = Sanitizer(FakeClock())
        sanitizer.begin(seed=0)
        sanitizer.wrap_stream("s", np.random.default_rng(0))
        out = tmp_path / "ledger.jsonl"
        n = sanitizer.export_jsonl(str(out))
        lines = out.read_text().splitlines()
        assert len(lines) == n == sanitizer.n_records
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_rng_streams_wraps_through_the_sanitizer(self):
        sanitizer = Sanitizer(FakeClock())
        rngs = RngStreams(seed=3, sanitizer=sanitizer)
        rngs.stream("churn").random()
        assert rngs.stream("churn") is rngs.stream("churn")
        assert records_of(sanitizer)[-1]["streams"]["churn"]["draws"] == 1


class TestCompare:
    def _ledger(self, seed=0, draws=1):
        clock = FakeClock()
        sanitizer = Sanitizer(clock)
        sanitizer.begin(seed=seed)
        s = sanitizer.wrap_stream("s", np.random.default_rng(seed))
        for _ in range(draws):
            s.random()
        return sanitizer.render_lines()

    def test_identical_ledgers(self):
        verdict = compare_ledgers(self._ledger(), self._ledger())
        assert verdict.identical
        assert verdict.render() == "ledgers identical"

    def test_seed_divergence_names_the_meta_record(self):
        verdict = compare_ledgers(self._ledger(seed=0), self._ledger(seed=1))
        assert not verdict.identical
        assert verdict.line == 1
        assert "seed=0 vs 1" in verdict.reason

    def test_draw_count_divergence_names_the_stream(self):
        verdict = compare_ledgers(
            self._ledger(draws=2), self._ledger(draws=5)
        )
        assert not verdict.identical
        assert "'s'" in verdict.reason
        assert "2 draws vs 5" in verdict.reason

    def test_truncated_ledger_is_named(self):
        lines = self._ledger()
        verdict = compare_ledgers(lines, lines[:-1])
        assert not verdict.identical
        assert "ends after" in verdict.reason

    def test_empty_ledgers_are_an_error(self):
        with pytest.raises(ValueError):
            compare_ledgers([], [])


def small_config(seed: int = 11, backend: str = "soa") -> ExperimentConfig:
    grid = GridConfig(
        n_peers=200,
        seed=seed,
        peer_state_backend=backend,
        probing=ProbingConfig(budget=10),
        churn=ChurnConfig(rate_per_min=4.0),
    )
    workload = WorkloadConfig(rate_per_min=30.0, horizon=4.0)
    return ExperimentConfig(grid=grid, workload=workload, drain_minutes=15.0)


def run_with_ledger(config: ExperimentConfig, path: Path):
    result = run_experiment(config.with_sanitize(str(path)))
    assert result.n_sanitize_records > 0
    return result


class TestRunDifferential:
    def test_same_seed_runs_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_with_ledger(small_config(), a)
        run_with_ledger(small_config(), b)
        assert a.read_bytes() == b.read_bytes()
        assert compare_ledger_files(str(a), str(b)).identical

    def test_object_and_soa_backends_agree(self, tmp_path):
        a, b = tmp_path / "soa.jsonl", tmp_path / "obj.jsonl"
        run_with_ledger(small_config(backend="soa"), a)
        run_with_ledger(small_config(backend="object"), b)
        assert a.read_bytes() == b.read_bytes()

    def test_seed_mismatch_is_named_at_the_first_record(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_with_ledger(small_config(seed=11), a)
        run_with_ledger(small_config(seed=12), b)
        verdict = compare_ledger_files(str(a), str(b))
        assert not verdict.identical
        assert verdict.line == 1
        assert "seed" in verdict.reason

    def test_behaviour_divergence_is_localised(self, tmp_path):
        # Same seed, different churn rate: the meta records agree, so the
        # first divergence is a real draw/write difference deep in the
        # run -- the differ must localise it, not just say "different".
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_with_ledger(small_config(), a)
        config = small_config()
        config = replace(
            config, grid=replace(config.grid, churn=ChurnConfig(rate_per_min=8.0))
        )
        run_with_ledger(config, b)
        verdict = compare_ledger_files(str(a), str(b))
        assert not verdict.identical
        assert verdict.line > 1
        assert "diverge" in verdict.render()

    def test_ledger_records_peer_creation_writes(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        run_with_ledger(small_config(), path)
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        creates = [
            r for r in records
            if r["kind"] == "write" and r["op"] == "peer-create"
        ]
        # Initial population + churn arrivals; generations stamp strictly
        # increasing membership versions.
        assert len(creates) >= 200
        gens = [r["gen"] for r in records if r["kind"] == "write"]
        assert gens == sorted(gens) or len(set(gens)) > 1
        admits = [
            r for r in records
            if r["kind"] == "write" and r["op"] == "admit"
        ]
        assert admits and all(r["plane"] == "sessions" for r in admits)

    def test_telemetry_is_byte_identical_with_sanitizer_on(self, tmp_path):
        off = tmp_path / "off.jsonl"
        on = tmp_path / "on.jsonl"
        run_experiment(small_config().with_telemetry(str(off)))
        run_experiment(
            small_config()
            .with_telemetry(str(on))
            .with_sanitize(str(tmp_path / "ledger.jsonl"))
        )
        assert off.read_bytes() == on.read_bytes()
