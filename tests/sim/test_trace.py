"""Unit tests for the structured event tracer."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import Tracer


def make():
    sim = Simulator()
    return sim, Tracer.for_simulator(sim)


class TestEmission:
    def test_event_carries_time_and_fields(self):
        sim, tracer = make()
        sim.call_at(3.0, lambda: tracer.emit("ping", a=1, b="x"))
        sim.run()
        event = tracer.last("ping")
        assert event.time == 3.0
        assert event.a == 1 and event.b == "x"

    def test_missing_field_raises_attribute_error(self):
        sim, tracer = make()
        event = tracer.emit("k", x=1)
        with pytest.raises(AttributeError):
            _ = event.y

    def test_str_rendering(self):
        sim, tracer = make()
        event = tracer.emit("session-failed", session_id=4, reason="gone")
        s = str(event)
        assert "session-failed" in s and "reason=gone" in s

    def test_counts_and_len(self):
        sim, tracer = make()
        tracer.emit("a")
        tracer.emit("a")
        tracer.emit("b")
        assert len(tracer) == 3
        assert tracer.counts() == {"a": 2, "b": 1}


class TestCapacity:
    def test_bounded_retention(self):
        sim, tracer = make()
        tracer = Tracer.for_simulator(sim, capacity=3)
        for i in range(10):
            tracer.emit("e", i=i)
        assert len(tracer) == 3
        assert [e.i for e in tracer] == [7, 8, 9]
        assert tracer.n_emitted == 10

    def test_capacity_validation(self):
        sim, _ = make()
        with pytest.raises(ValueError):
            Tracer.for_simulator(sim, capacity=0)


class TestQueries:
    def test_filter_by_kind_and_time(self):
        sim, tracer = make()
        for t, kind in ((1.0, "a"), (2.0, "b"), (3.0, "a")):
            sim.call_at(t, lambda k=kind: tracer.emit(k))
        sim.run()
        assert len(tracer.events("a")) == 2
        assert len(tracer.events("a", since=2.0)) == 1
        assert len(tracer.events(until=2.0)) == 2

    def test_last_none_when_empty(self):
        _, tracer = make()
        assert tracer.last() is None

    def test_format_limits(self):
        _, tracer = make()
        for i in range(100):
            tracer.emit("e", i=i)
        out = tracer.format(limit=5)
        assert out.count("\n") == 4


class TestSubscription:
    def test_kind_subscription(self):
        _, tracer = make()
        seen = []
        tracer.subscribe("hit", seen.append)
        tracer.emit("hit", n=1)
        tracer.emit("miss", n=2)
        assert [e.n for e in seen] == [1]

    def test_wildcard_subscription(self):
        _, tracer = make()
        seen = []
        tracer.subscribe("*", seen.append)
        tracer.emit("a")
        tracer.emit("b")
        assert len(seen) == 2

    def test_unsubscribe(self):
        _, tracer = make()
        seen = []
        unsub = tracer.subscribe("e", seen.append)
        tracer.emit("e")
        unsub()
        tracer.emit("e")
        assert len(seen) == 1
        unsub()  # idempotent


class TestGridIntegration:
    def test_traced_run_records_lifecycle(self):
        from repro.grid import GridConfig, P2PGrid

        grid = P2PGrid(GridConfig(n_peers=200, seed=8, tracing=True))
        agg = grid.make_aggregator("qsa")
        for _ in range(5):
            agg.aggregate(grid.make_request("video-on-demand", duration=1.0))
        grid.sim.run(until=3.0)
        counts = grid.tracer.counts()
        assert counts["request"] == 5
        assert counts.get("session-admitted", 0) >= 1
        assert counts.get("session-completed", 0) >= 1

    def test_traced_churn_and_repair(self):
        from repro.grid import GridConfig, P2PGrid
        from repro.sessions.recovery import RecoveryConfig

        grid = P2PGrid(GridConfig(
            n_peers=200, seed=9, tracing=True, recovery=RecoveryConfig(),
        ))
        agg = grid.make_aggregator("qsa")
        res = None
        for _ in range(10):
            res = agg.aggregate(
                grid.make_request("video-on-demand", duration=50.0)
            )
            if res.admitted:
                break
        assert res.admitted
        victim = res.peers[0]
        grid._on_peer_departure(victim)
        grid.directory.depart(victim, grid.sim.now)
        counts = grid.tracer.counts()
        assert counts["peer-departed"] == 1
        assert counts.get("session-repaired", 0) + counts.get(
            "session-failed", 0
        ) >= 1

    def test_tracing_off_by_default(self):
        from repro.grid import GridConfig, P2PGrid

        grid = P2PGrid(GridConfig(n_peers=200, seed=8))
        assert grid.tracer is None
