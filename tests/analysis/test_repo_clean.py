"""The repository's own source tree passes its own linter.

This is the enforcement test: a new wall-clock call, un-streamed RNG
draw, set-order iteration, un-catalogued telemetry name, or un-gated
cache in the discovery plane fails CI here (and in the dedicated CI
lint job) unless it carries a justified pragma.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean():
    report = lint_paths([REPO / "src", REPO / "tests"])
    assert report.ok, "\n" + report.render_text()


def test_repo_is_whole_program_clean():
    # The cross-module pass: stream aliasing (DET004), shared mutable
    # state (SHARD001), set escapes (TEL002) and pragma justification
    # (E001) across the entire source tree.
    report = lint_paths([REPO / "src", REPO / "tests"], whole_program=True)
    assert report.ok, "\n" + report.render_text()


def test_repo_scan_covers_the_full_scan_markers():
    # The TEL001 dead-entry reverse check only arms on a full scan; make
    # sure the default paths actually constitute one, so catalog rot
    # cannot slip through via a silently disarmed check.
    from repro.analysis.engine import ProjectState, _scan_one
    from repro.analysis.rules.telemetry import _FULL_SCAN_MARKERS

    project = ProjectState()
    from repro.analysis.engine import iter_python_files

    for path in iter_python_files([REPO / "src"]):
        result = _scan_one(str(path), None)
        if result.pkg is not None:
            project.scanned_pkgs.add(result.pkg)
    assert _FULL_SCAN_MARKERS <= project.scanned_pkgs
