"""Unit tests for the whole-program import graph and plane naming."""

from __future__ import annotations

from repro.analysis.callgraph import (
    ImportGraph,
    ModuleFacts,
    build_graph,
    module_name_of_pkg,
    plane_of_module,
)


class TestModuleNaming:
    def test_nested_module(self):
        assert module_name_of_pkg("sim/rng.py") == "repro.sim.rng"

    def test_package_init_collapses(self):
        assert module_name_of_pkg("sim/__init__.py") == "repro.sim"
        assert module_name_of_pkg("__init__.py") == "repro"

    def test_top_level_module(self):
        assert module_name_of_pkg("grid.py") == "repro.grid"

    def test_non_python_is_none(self):
        assert module_name_of_pkg("py.typed") is None


class TestPlaneNaming:
    def test_subsystem_plane_is_first_component(self):
        assert plane_of_module("repro.network.churn") == "network"
        assert plane_of_module("repro.sim.rng") == "sim"
        assert plane_of_module("repro.analysis.engine") == "analysis"

    def test_top_level_wiring_modules(self):
        assert plane_of_module("repro.grid") == "grid"
        assert plane_of_module("repro.cli") == "cli"
        assert plane_of_module("repro.__main__") == "cli"
        assert plane_of_module("repro") == "top"

    def test_foreign_module_is_none(self):
        assert plane_of_module("numpy.random") is None


def facts(module, imports=(), rel=None):
    plane = plane_of_module(module) or "top"
    return ModuleFacts(
        module=module, plane=plane,
        rel=rel or module.replace(".", "/") + ".py",
        imports=tuple(imports),
    )


class TestBuildGraph:
    def test_forward_and_reverse_edges(self):
        graph = build_graph([
            facts("repro.sim.rng"),
            facts("repro.network.churn", imports=["repro.sim.rng"]),
        ])
        assert graph.imports["repro.network.churn"] == {"repro.sim.rng"}
        assert graph.imported_by["repro.sim.rng"] == {"repro.network.churn"}
        assert graph.importer_planes("repro.sim.rng") == {"network"}

    def test_from_import_of_a_name_resolves_to_its_module(self):
        # "from repro.sim.rng import RngStreams" records the module path;
        # an attribute-qualified target resolves to its longest scanned
        # module prefix.
        graph = build_graph([
            facts("repro.sim.rng"),
            facts("repro.grid", imports=["repro.sim.rng.RngStreams"]),
        ])
        assert graph.imported_by["repro.sim.rng"] == {"repro.grid"}

    def test_unscanned_repro_target_still_collects_importers(self):
        # A partial scan may miss the imported file; the edge lands on
        # the dotted name itself so under-reporting stays monotone.
        graph = build_graph([
            facts("repro.sessions.session", imports=["repro.network.peer"]),
        ])
        assert graph.imported_by["repro.network.peer"] == {
            "repro.sessions.session"
        }
        # Plane resolution still works for unscanned repro modules.
        assert graph.plane("repro.network.peer") == "network"

    def test_self_import_is_not_an_edge(self):
        graph = build_graph([
            facts("repro.sim.rng", imports=["repro.sim.rng"]),
        ])
        assert "repro.sim.rng" not in graph.imported_by

    def test_importer_planes_merge_across_modules(self):
        graph = build_graph([
            facts("repro.sim.rng"),
            facts("repro.network.churn", imports=["repro.sim.rng"]),
            facts("repro.sessions.session", imports=["repro.sim.rng"]),
            facts("repro.sim.engine", imports=["repro.sim.rng"]),
        ])
        assert graph.importer_planes("repro.sim.rng") == {
            "network", "sessions", "sim"
        }

    def test_empty_graph(self):
        graph = build_graph([])
        assert isinstance(graph, ImportGraph)
        assert graph.importer_planes("repro.sim.rng") == set()
