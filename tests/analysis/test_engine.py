"""Engine behaviour: pragmas, JSON output, exit codes, file discovery."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import jsonschema

from repro.analysis import lint_paths
from repro.analysis.engine import PARSE_RULE_ID

from tests.analysis.test_rules import lint_snippet

REPO = Path(__file__).resolve().parents[2]


class TestPragmas:
    def test_line_pragma_suppresses(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\n"
            "t = time.time()  # lint: disable=DET001 -- fixture\n",
        )
        assert report.ok
        # The import line still counts: only the flagged call is annotated.
        assert report.suppressed == 1

    def test_line_pragma_is_rule_specific(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\n"
            "t = time.time()  # lint: disable=DET002 -- wrong rule\n",
        )
        assert [f.rule for f in report.findings] == ["DET001"]
        assert report.suppressed == 0

    def test_disable_all_pragma(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # lint: disable=all\n",
        )
        assert report.ok
        assert report.suppressed == 1

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "# lint: disable-file=DET001 -- fixture\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n",
        )
        assert report.ok
        assert report.suppressed == 2

    def test_multi_rule_pragma(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time, random  # lint: disable=DET001,DET002 -- fixture\n"
            "t = time.time()  # lint: disable=DET001\n",
        )
        assert report.ok
        assert report.suppressed == 2


class TestParseErrors:
    def test_syntax_error_is_a_finding(self, tmp_path):
        report = lint_snippet(tmp_path, "def broken(:\n")
        assert [f.rule for f in report.findings] == [PARSE_RULE_ID]
        assert report.exit_code == 1


class TestReport:
    def test_findings_sorted_and_rendered(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        report = lint_paths([tmp_path], jobs=1)
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)
        first = report.findings[0]
        assert report.render_text().splitlines()[0] == (
            f"{first.path}:{first.line}:{first.col}: "
            f"{first.rule} {first.message}"
        )
        assert report.render_text().splitlines()[-1].endswith("in 2 files")

    def test_json_output_matches_schema(self, tmp_path):
        report = lint_snippet(tmp_path, "import time\nt = time.time()\n")
        payload = json.loads(report.render_json())
        schema = {
            "type": "object",
            "required": ["version", "files", "suppressed", "rules",
                         "findings"],
            "properties": {
                "version": {"const": 1},
                "files": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
                "rules": {
                    "type": "object",
                    "additionalProperties": {"type": "integer"},
                },
                "findings": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["path", "line", "col", "rule",
                                     "message"],
                        "properties": {
                            "path": {"type": "string"},
                            "line": {"type": "integer", "minimum": 1},
                            "col": {"type": "integer", "minimum": 0},
                            "rule": {"type": "string"},
                            "message": {"type": "string"},
                        },
                        "additionalProperties": False,
                    },
                },
            },
            "additionalProperties": False,
        }
        jsonschema.validate(payload, schema)
        assert payload["rules"] == {"DET001": 1}

    def test_skips_pycache_and_dedups(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n")
        junk = pkg / "__pycache__"
        junk.mkdir()
        (junk / "mod.cpython-311.py").write_text("import time\ntime.time()\n")
        report = lint_paths([pkg, pkg / "mod.py"], jobs=1)
        assert report.ok
        assert report.n_files == 1


class TestCli:
    def run_cli(self, *argv, cwd=None):
        env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True, text=True, cwd=cwd or REPO, env=env,
        )

    def test_exit_zero_on_clean_tree(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = self.run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "0 findings" in proc.stdout

    def test_exit_one_on_findings_and_json(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        proc = self.run_cli(str(tmp_path), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["rules"] == {"DET001": 1}

    def test_exit_two_on_unknown_rule(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = self.run_cli(str(tmp_path), "--select", "BOGUS1")
        assert proc.returncode == 2
        assert "BOGUS1" in proc.stderr

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("DET001", "DET002", "DET003", "TEL001", "CACHE001"):
            assert rule_id in proc.stdout


class TestPragmaJustification:
    # E001: under --whole-program every pragma must carry a `-- why`.
    def test_unjustified_pragma_fires_under_whole_program(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # lint: disable=DET001\n",
            whole_program=True,
        )
        assert [f.rule for f in report.findings] == ["E001"]
        assert report.suppressed == 1  # the pragma itself still suppresses

    def test_justified_pragma_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\n"
            "t = time.time()  # lint: disable=DET001 -- fixture timing\n",
            whole_program=True,
        )
        assert report.ok

    def test_default_scan_does_not_require_justification(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # lint: disable=DET001\n",
        )
        assert report.ok

    def test_pragma_text_in_a_docstring_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            '"""Mentions # lint: disable=DET001 in prose."""\nx = 1\n',
            whole_program=True,
        )
        assert report.ok


class TestParseOnce:
    # The engine parses each file exactly once per scan and shares one
    # materialised node list across every rule (the lint-engine perf
    # fix); a second parse or walk per rule would regress scan time by
    # the rule count.
    def test_each_file_is_parsed_exactly_once(self, tmp_path, monkeypatch):
        import ast

        from repro.analysis import engine

        for i in range(3):
            (tmp_path / f"m{i}.py").write_text(
                "import time\nt = time.time()\n"
            )
        real_parse = ast.parse
        calls = []

        def counting_parse(source, *args, **kwargs):
            calls.append(1)
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(engine.ast, "parse", counting_parse)
        report = lint_paths([tmp_path], jobs=1)
        assert len(report.findings) == 3
        assert len(calls) == 3

    def test_walk_materialises_the_tree_once(self, monkeypatch):
        import ast

        from repro.analysis import engine
        from repro.analysis.engine import FileContext

        source = "import time\nx = time.time()\n"
        ctx = FileContext(
            Path("m.py"), "m.py", source, ast.parse(source)
        )
        real_walk = ast.walk
        calls = []

        def counting_walk(tree):
            calls.append(1)
            return real_walk(tree)

        monkeypatch.setattr(engine.ast, "walk", counting_walk)
        list(ctx.walk())
        list(ctx.walk(ast.Call))
        list(ctx.walk(ast.Import, ast.ImportFrom))
        assert len(calls) == 1
