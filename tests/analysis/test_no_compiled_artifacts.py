"""Guard: no compiled python artifacts may ever be committed again.

PR 7 purged the historically tracked ``__pycache__/*.pyc`` files and
added ``.gitignore`` coverage; this test (and the matching CI lint-job
step) keeps the tree clean by failing if ``git ls-files`` ever reports
a bytecode file or ``__pycache__`` directory as tracked.
"""

import re
import subprocess

import pytest

_COMPILED = re.compile(r"(^|/)__pycache__(/|$)|\.py[cod]$|\$py\.class$")


def _tracked_files():
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        pytest.skip("not a git checkout (or git unavailable)")
    return proc.stdout.splitlines()


def test_no_compiled_artifacts_tracked():
    offenders = [f for f in _tracked_files() if _COMPILED.search(f)]
    assert not offenders, (
        "compiled artifacts tracked in git (remove with "
        f"`git rm --cached`): {offenders[:10]}"
    )


def test_gitignore_covers_bytecode():
    ignored = {"__pycache__/", "*.py[cod]"}
    with open(".gitignore", encoding="utf-8") as fh:
        lines = {line.strip() for line in fh}
    assert ignored <= lines, f".gitignore missing {ignored - lines}"
