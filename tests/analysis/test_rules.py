"""Fixture snippets: each built-in rule fires exactly once, and the
matching clean twin stays silent.

CACHE001 is package-scoped (``lookup/``, ``probing/``, ``core/``), so
its fixtures are written under a ``repro/core/`` directory inside the
tmp tree -- the engine resolves scope from the path, not the import
system.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths


def lint_snippet(tmp_path: Path, source: str, relpath: str = "snippet.py",
                 **kwargs):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([path], jobs=1, **kwargs)


class TestDET001:
    def test_wall_clock_fires_once(self, tmp_path):
        report = lint_snippet(tmp_path, "import time\nt = time.time()\n")
        assert [f.rule for f in report.findings] == ["DET001"]

    def test_from_import_alias(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from time import perf_counter as pc\nt = pc()\n",
        )
        assert [f.rule for f in report.findings] == ["DET001"]

    def test_datetime_now(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from datetime import datetime\nd = datetime.now()\n",
        )
        assert [f.rule for f in report.findings] == ["DET001"]

    def test_sim_clock_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "def f(sim):\n    return sim.now\n")
        assert report.ok


class TestDET002:
    def test_unstreamed_numpy_rng_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(0)\n",
        )
        assert [f.rule for f in report.findings] == ["DET002"]

    def test_stdlib_random_import(self, tmp_path):
        report = lint_snippet(tmp_path, "import random\n")
        assert [f.rule for f in report.findings] == ["DET002"]

    def test_streamed_rng_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(rngs):\n    return rngs.stream('churn').random()\n",
        )
        assert report.ok


class TestDET003:
    def test_set_iteration_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(xs):\n    for x in set(xs):\n        yield x\n",
        )
        assert [f.rule for f in report.findings] == ["DET003"]

    def test_keys_view_iteration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(d):\n    return [k for k in d.keys()]\n",
        )
        assert [f.rule for f in report.findings] == ["DET003"]

    def test_sorted_set_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(xs):\n    for x in sorted(set(xs)):\n        yield x\n",
        )
        assert report.ok


class TestTEL001:
    def test_uncatalogued_event_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(bus):\n    bus.emit('no.such.event', x=1)\n",
        )
        assert [f.rule for f in report.findings] == ["TEL001"]

    def test_uncatalogued_span(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(tracer):\n    with tracer.span('no.such.span'):\n"
            "        pass\n",
        )
        assert [f.rule for f in report.findings] == ["TEL001"]

    def test_catalogued_event_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(bus):\n    bus.emit('lookup.done', hops=2)\n",
        )
        assert report.ok

    def test_dead_catalog_entry_via_finalize(self):
        from repro.analysis.engine import ProjectState
        from repro.analysis.registry import get_rule
        from repro.analysis.rules.telemetry import (
            _CATALOG_KEY,
            _FULL_SCAN_MARKERS,
        )

        project = ProjectState()
        project.scanned_pkgs = set(_FULL_SCAN_MARKERS)
        project.contributions[_CATALOG_KEY] = [
            ("event", "ghost.event", 42, "src/repro/telemetry/catalog.py"),
        ]
        findings = list(get_rule("TEL001").finalize(project))
        assert len(findings) == 1
        assert findings[0].rule == "TEL001"
        assert "ghost.event" in findings[0].message
        assert findings[0].line == 42

    def test_partial_scan_skips_reverse_check(self):
        from repro.analysis.engine import ProjectState
        from repro.analysis.registry import get_rule
        from repro.analysis.rules.telemetry import _CATALOG_KEY

        project = ProjectState()
        project.scanned_pkgs = {"telemetry/catalog.py"}  # markers missing
        project.contributions[_CATALOG_KEY] = [
            ("event", "ghost.event", 1, "catalog.py"),
        ]
        assert list(get_rule("TEL001").finalize(project)) == []

    def test_uncatalogued_slo_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from repro.telemetry.slo import Objective\n"
            "OBJ = Objective(name='slo.no_such', description='x',\n"
            "                kind='floor', target=0.5,\n"
            "                series='serve.window.admits')\n",
        )
        assert [f.rule for f in report.findings] == ["TEL001"]

    def test_catalogued_slo_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from repro.telemetry.slo import Objective\n"
            "OBJ = Objective(name='slo.psi', description='x',\n"
            "                kind='floor', target=0.85,\n"
            "                series='serve.window.admits')\n",
        )
        assert report.ok

    def test_uncatalogued_windowed_series_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(windows):\n"
            "    windows.track('serve.window.no_such', kind='counter')\n",
        )
        assert [f.rule for f in report.findings] == ["TEL001"]

    def test_catalogued_windowed_series_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def f(windows):\n"
            "    windows.track('serve.window.requests', kind='counter')\n",
        )
        assert report.ok

    def test_cumulative_metric_name_not_trackable(self, tmp_path):
        # A window-kind check, not a general metric check: tracking a
        # *cumulative* catalog name as a derived series still fires.
        report = lint_snippet(
            tmp_path,
            "def f(windows):\n"
            "    windows.track('qcs.compositions', kind='counter')\n",
        )
        assert [f.rule for f in report.findings] == ["TEL001"]

    def test_dead_slo_and_window_entries_via_finalize(self):
        from repro.analysis.engine import ProjectState
        from repro.analysis.registry import get_rule
        from repro.analysis.rules.telemetry import (
            _CATALOG_KEY,
            _FULL_SCAN_MARKERS,
            _SLOS_KEY,
            _WINDOWS_KEY,
        )

        project = ProjectState()
        project.scanned_pkgs = set(_FULL_SCAN_MARKERS)
        project.contributions[_CATALOG_KEY] = [
            ("slo", "slo.ghost", 7, "src/repro/telemetry/catalog.py"),
            ("window", "serve.window.ghost", 9,
             "src/repro/telemetry/catalog.py"),
            ("slo", "slo.live", 11, "src/repro/telemetry/catalog.py"),
            ("window", "serve.window.live", 13,
             "src/repro/telemetry/catalog.py"),
        ]
        project.contributions[_SLOS_KEY] = ["slo.live"]
        project.contributions[_WINDOWS_KEY] = ["serve.window.live"]
        findings = list(get_rule("TEL001").finalize(project))
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "slo.ghost" in messages and "declared" in messages
        assert "serve.window.ghost" in messages and "tracked" in messages

    def test_catalog_parser_sees_slos_and_windows(self):
        # The AST parser over the real catalog module finds every
        # SLO_CATALOG entry and every window-kind METRIC_CATALOG entry
        # (guards against the reverse check silently covering nothing).
        import ast
        from pathlib import Path

        import repro.telemetry.catalog as catalog_mod
        from repro.analysis.engine import FileContext
        from repro.analysis.rules.telemetry import _catalog_entries
        from repro.telemetry.catalog import METRIC_CATALOG, SLO_CATALOG

        path = Path(catalog_mod.__file__)
        source = path.read_text()
        ctx = FileContext(path, str(path), source, ast.parse(source))
        parsed = {(kind, name) for kind, name, _line in _catalog_entries(ctx)}
        for slo_name in SLO_CATALOG:
            assert ("slo", slo_name) in parsed
        window_names = {name for name, (kind, *_r) in METRIC_CATALOG.items()
                        if kind == "window"}
        assert window_names  # the serving plane declares some
        for name in window_names:
            assert ("window", name) in parsed
        # cumulative instruments must *not* enter the reverse check
        assert ("metric", "qcs.compositions") not in parsed
        assert ("window", "qcs.compositions") not in parsed

    def test_full_repo_scan_is_clean(self):
        # End-to-end: the shipped package passes its own two-way check.
        from pathlib import Path

        import repro
        from repro.analysis import lint_paths

        report = lint_paths([Path(repro.__file__).parent], jobs=1)
        assert report.ok, [f.render() for f in report.findings]


class TestCACHE001:
    def test_ungated_cache_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from repro.lookup.cache import BoundedCache\n"
            "CACHE = BoundedCache(64)\n",
            relpath="repro/core/bad_cache.py",
        )
        assert [f.rule for f in report.findings] == ["CACHE001"]

    def test_emit_in_guarded_branch_fires_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "class C:\n"
            "    def f(self):\n"
            "        if self.fast_paths:\n"
            "            self.bus.emit('lookup.done', hops=0)\n",
            relpath="repro/lookup/bad_hit.py",
        )
        assert [f.rule for f in report.findings] == ["CACHE001"]

    def test_gated_counter_only_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from repro.lookup.cache import BoundedCache\n"
            "class C:\n"
            "    fast_paths = True\n"
            "    def __init__(self):\n"
            "        self._route_cache = BoundedCache(64)\n"
            "    def f(self, tel):\n"
            "        if self.fast_paths:\n"
            "            self._route_cache.get('k')\n"
            "            tel.metrics.counter('cache.route.hits').inc()\n",
            relpath="repro/lookup/good_cache.py",
        )
        assert report.ok

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from repro.lookup.cache import BoundedCache\n"
            "CACHE = BoundedCache(64)\n",
            relpath="repro/workload/not_discovery_plane.py",
        )
        assert report.ok


class TestSelectDisable:
    def test_select_limits_rules(self, tmp_path):
        source = "import time\nimport random\nt = time.time()\n"
        all_report = lint_snippet(tmp_path, source)
        assert {f.rule for f in all_report.findings} == {"DET001", "DET002"}
        only_det2 = lint_snippet(tmp_path, source, select=["DET002"])
        assert [f.rule for f in only_det2.findings] == ["DET002"]
        disabled = lint_snippet(tmp_path, source, disable=["DET001"])
        assert [f.rule for f in disabled.findings] == ["DET002"]

    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_snippet(tmp_path, "x = 1\n", select=["NOPE999"])


class TestPluginRegistry:
    def test_thirty_line_rule_registers_and_fires(self, tmp_path):
        import ast

        from repro.analysis.registry import Rule, _RULES, register

        @register
        class NoEval(Rule):
            id = "TMP999"
            name = "no-eval"
            invariant = "fixture rule for the plugin test"

            def check(self, ctx):
                for node in ctx.walk(ast.Call):
                    if ctx.call_chain(node) == ("eval",):
                        yield ctx.finding(self, node, "eval() used")

        try:
            report = lint_snippet(
                tmp_path, "x = eval('1 + 1')\n", select=["TMP999"]
            )
            assert [f.rule for f in report.findings] == ["TMP999"]
        finally:
            _RULES.pop("TMP999")


def lint_tree(tmp_path: Path, files: dict, **kwargs):
    """Write a multi-file fixture tree and lint it as one scan."""
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        paths.append(path)
    return lint_paths(sorted(paths), jobs=1, **kwargs)


DRAW = "def f(rngs):\n    return rngs.stream('churn').random()\n"


class TestDET004:
    def test_stream_drawn_from_two_planes_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"repro/network/a.py": DRAW, "repro/sessions/b.py": DRAW},
            whole_program=True,
        )
        assert [f.rule for f in report.findings] == ["DET004"]
        message = report.findings[0].message
        assert "'churn'" in message
        assert "network" in message and "sessions" in message

    def test_two_files_one_plane_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"repro/network/a.py": DRAW, "repro/network/b.py": DRAW},
            whole_program=True,
        )
        assert report.ok

    def test_distinct_streams_are_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/network/a.py": DRAW,
                "repro/sessions/b.py":
                    "def f(rngs):\n"
                    "    return rngs.stream('requests').random()\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_handoff_attributes_to_the_receiving_plane(self, tmp_path):
        # The wiring module hands the stream to network; network also
        # draws it directly -- one plane total, clean.
        report = lint_tree(
            tmp_path,
            {
                "repro/wiring.py":
                    "from repro.network.churn import ChurnProcess\n"
                    "def build(rngs):\n"
                    "    return ChurnProcess(rng=rngs.stream('churn'))\n",
                "repro/network/churn.py":
                    "class ChurnProcess:\n"
                    "    def __init__(self, rng):\n"
                    "        self.rng = rng\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_not_armed_without_whole_program(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"repro/network/a.py": DRAW, "repro/sessions/b.py": DRAW},
        )
        assert report.ok

    def test_tests_are_exempt(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "tests/repro/network/a.py": DRAW,
                "tests/repro/sessions/b.py": DRAW,
            },
            whole_program=True,
        )
        assert report.ok


MUTATED_STATE = (
    "REGISTRY = {}\n"
    "\n"
    "def put(key, value):\n"
    "    REGISTRY.setdefault(key, []).append(value)\n"
)


class TestSHARD001:
    def test_cross_plane_mutable_state_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/network/state.py": MUTATED_STATE,
                "repro/sessions/user.py":
                    "from repro.network.state import REGISTRY\n"
                    "def read(key):\n"
                    "    return REGISTRY.get(key)\n",
            },
            whole_program=True,
        )
        assert [f.rule for f in report.findings] == ["SHARD001"]
        assert "'REGISTRY'" in report.findings[0].message
        assert report.findings[0].path.endswith("state.py")

    def test_single_plane_state_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/network/state.py": MUTATED_STATE,
                "repro/network/user.py":
                    "from repro.network.state import REGISTRY\n"
                    "def read(key):\n"
                    "    return REGISTRY.get(key)\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_unmutated_state_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/network/state.py": "REGISTRY = {'a': 1}\n",
                "repro/sessions/user.py":
                    "from repro.network.state import REGISTRY\n"
                    "def read(key):\n"
                    "    return REGISTRY.get(key)\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_allowlisted_singleton_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/telemetry/bus.py":
                    "class Bus:\n"
                    "    pass\n"
                    "NULL_BUS = Bus()\n"
                    "def reset():\n"
                    "    global NULL_BUS\n"
                    "    NULL_BUS = Bus()\n",
                "repro/serve/app.py":
                    "from repro.telemetry.bus import NULL_BUS\n"
                    "def handler():\n"
                    "    return NULL_BUS\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_offline_plane_owner_is_exempt(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/analysis/registry.py": MUTATED_STATE,
                "repro/network/user.py":
                    "from repro.analysis.registry import REGISTRY\n"
                    "def read(key):\n"
                    "    return REGISTRY.get(key)\n",
            },
            whole_program=True,
        )
        assert report.ok


class TestTEL002:
    def test_set_into_telemetry_emit_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/network/x.py":
                    "def f(bus, xs):\n"
                    "    bus.emit('lookup.done', peers=set(xs))\n",
            },
            whole_program=True,
        )
        assert [f.rule for f in report.findings] == ["TEL002"]

    def test_sorted_emit_payload_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/network/x.py":
                    "def f(bus, xs):\n"
                    "    bus.emit('lookup.done', peers=sorted(set(xs)))\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_cross_plane_set_return_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/services/cat.py":
                    "def hosts():\n"
                    "    return {1, 2}\n",
                "repro/sessions/user.py":
                    "from repro.services.cat import hosts\n"
                    "def read():\n"
                    "    return hosts()\n",
            },
            whole_program=True,
        )
        assert [f.rule for f in report.findings] == ["TEL002"]
        assert "hosts()" in report.findings[0].message
        assert "sessions" in report.findings[0].message

    def test_set_return_without_foreign_importer_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/services/cat.py":
                    "def hosts():\n"
                    "    return {1, 2}\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_private_set_return_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/services/cat.py":
                    "def _hosts():\n"
                    "    return {1, 2}\n",
                "repro/sessions/user.py":
                    "from repro.services import cat\n"
                    "def read():\n"
                    "    return cat._hosts()\n",
            },
            whole_program=True,
        )
        assert report.ok

    def test_annotated_set_return_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "repro/services/cat.py":
                    "from typing import Set\n"
                    "def hosts() -> Set[int]:\n"
                    "    return build()\n"
                    "def build():\n"
                    "    return None\n",
                "repro/sessions/user.py":
                    "from repro.services.cat import hosts\n",
            },
            whole_program=True,
        )
        assert [f.rule for f in report.findings] == ["TEL002"]
