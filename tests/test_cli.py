"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure5_defaults(self):
        args = build_parser().parse_args(["figure5"])
        assert args.command == "figure5"
        assert 1000 in args.rates

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "random", "--rate", "50",
             "--churn", "10", "--seed", "3"]
        )
        assert args.algorithm == "random"
        assert args.rate == 50.0
        assert args.churn == 10.0

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "bogus"])

    def test_run_telemetry_flag(self):
        args = build_parser().parse_args(
            ["run", "--telemetry", "out.jsonl"]
        )
        assert args.telemetry == "out.jsonl"

    def test_telemetry_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "peers" in out

    def test_run_small(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main(["run", "--rate", "10", "--horizon", "2"]) == 0
        out = capsys.readouterr().out
        assert "qsa" in out
        assert "ψ" in out

    def test_run_with_ablation_flag(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main(
            ["run", "--rate", "10", "--horizon", "2", "--no-uptime-filter"]
        ) == 0

    def test_figure5_tiny(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main(["figure5", "--rates", "40", "--horizon", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "qsa" in out

    def test_figure8_tiny(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main([
            "figure8", "--rate", "20", "--churn", "20", "--horizon", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "overall" in out

    def test_run_with_telemetry_export(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        path = tmp_path / "events.jsonl"
        assert main([
            "run", "--rate", "10", "--horizon", "2",
            "--telemetry", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "counters" in out
        assert path.exists()

    def test_telemetry_catalog(self, capsys):
        assert main(["telemetry", "catalog"]) == 0
        out = capsys.readouterr().out
        assert "request.setup" in out
        assert "lookup.hops" in out

    def test_telemetry_summary(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        path = tmp_path / "events.jsonl"
        main(["run", "--rate", "10", "--horizon", "2",
              "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["telemetry", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "monotone" in out
        assert "request.setup" in out

    def test_telemetry_summary_missing_file(self, capsys, tmp_path):
        assert main(["telemetry", "summary", str(tmp_path / "nope")]) == 1
