"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure5_defaults(self):
        args = build_parser().parse_args(["figure5"])
        assert args.command == "figure5"
        assert 1000 in args.rates

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "random", "--rate", "50",
             "--churn", "10", "--seed", "3"]
        )
        assert args.algorithm == "random"
        assert args.rate == 50.0
        assert args.churn == 10.0

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "bogus"])

    def test_run_telemetry_flag(self):
        args = build_parser().parse_args(
            ["run", "--telemetry", "out.jsonl"]
        )
        assert args.telemetry == "out.jsonl"

    def test_telemetry_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "peers" in out

    def test_run_small(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main(["run", "--rate", "10", "--horizon", "2"]) == 0
        out = capsys.readouterr().out
        assert "qsa" in out
        assert "ψ" in out

    def test_run_with_ablation_flag(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main(
            ["run", "--rate", "10", "--horizon", "2", "--no-uptime-filter"]
        ) == 0

    def test_figure5_tiny(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main(["figure5", "--rates", "40", "--horizon", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "qsa" in out

    def test_figure8_tiny(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert main([
            "figure8", "--rate", "20", "--churn", "20", "--horizon", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "overall" in out

    def test_run_with_telemetry_export(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        path = tmp_path / "events.jsonl"
        assert main([
            "run", "--rate", "10", "--horizon", "2",
            "--telemetry", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "counters" in out
        assert path.exists()

    def test_telemetry_catalog(self, capsys):
        assert main(["telemetry", "catalog"]) == 0
        out = capsys.readouterr().out
        assert "request.setup" in out
        assert "lookup.hops" in out

    def test_telemetry_summary(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        path = tmp_path / "events.jsonl"
        main(["run", "--rate", "10", "--horizon", "2",
              "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["telemetry", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "monotone" in out
        assert "request.setup" in out

    def test_telemetry_summary_missing_file(self, capsys, tmp_path):
        assert main(["telemetry", "summary", str(tmp_path / "nope")]) == 1


class TestTraceCommands:
    @pytest.fixture
    def telemetry_export(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        path = tmp_path / "events.jsonl"
        main(["run", "--rate", "10", "--horizon", "2",
              "--telemetry", str(path)])
        return path

    def test_tree(self, capsys, telemetry_export):
        capsys.readouterr()
        assert main(["trace", "tree", str(telemetry_export)]) == 0
        out = capsys.readouterr().out
        assert "request" in out

    def test_critical_path_on_sim_stream(self, capsys, telemetry_export):
        capsys.readouterr()
        assert main(["trace", "critical-path", str(telemetry_export)]) == 0
        out = capsys.readouterr().out
        assert "sim minutes" in out
        assert "'request' trees" in out

    def test_flame_to_file(self, capsys, telemetry_export, tmp_path):
        capsys.readouterr()
        out_path = tmp_path / "flame.folded"
        assert main(["trace", "flame", str(telemetry_export),
                     "--out", str(out_path)]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and weight.isdigit()

    def test_missing_file(self, capsys, tmp_path):
        assert main(["trace", "tree", str(tmp_path / "nope.jsonl")]) == 1

    def test_no_spans_in_stream(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"t": 0.0, "seq": 0, "event": "lookup.done"}\n')
        assert main(["trace", "tree", str(path)]) == 1


class TestProfileCommand:
    def test_profile_run_with_trace_out(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        trace = tmp_path / "prof.jsonl"
        assert main(["profile", "run", "--rate", "10", "--horizon", "2",
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "wall clock:" in out
        assert "requests_per_sec" in out
        assert trace.exists()
        capsys.readouterr()
        # The exported trace feeds the same analytics commands.
        assert main(["trace", "critical-path", str(trace)]) == 0
        assert "wall seconds" in capsys.readouterr().out


class TestPerfCommands:
    def test_scenarios_listing(self, capsys):
        assert main(["perf", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "baseline" in out

    def test_record_unknown_scenario(self, capsys):
        assert main(["perf", "record", "--scenarios", "bogus"]) == 1

    def test_record_and_compare(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        old = tmp_path / "BENCH_old.json"
        assert main(["perf", "record", "--scenarios", "smoke",
                     "--out", str(old)]) == 0
        capsys.readouterr()
        assert main(["perf", "compare", str(old), str(old)]) == 0
        assert "no regressions" in capsys.readouterr().out

        import json
        doc = json.loads(old.read_text())
        doc["scenarios"]["smoke"]["throughput"]["requests_per_sec"] *= 0.3
        regressed = tmp_path / "BENCH_new.json"
        regressed.write_text(json.dumps(doc))
        assert main(["perf", "compare", str(old), str(regressed)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # --warn-only reports but does not fail (the CI mode).
        assert main(["perf", "compare", str(old), str(regressed),
                     "--warn-only"]) == 0

    def test_compare_missing_file(self, capsys, tmp_path):
        assert main(["perf", "compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 1
