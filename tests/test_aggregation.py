"""Integration tests for the three aggregation algorithms end to end."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationStatus
from repro.grid import GridConfig, P2PGrid


@pytest.fixture()
def grid():
    return P2PGrid(GridConfig(n_peers=300, seed=7))


def admit_one(grid, agg, app="video-on-demand", level="average", tries=20,
              duration=5.0):
    for _ in range(tries):
        req = grid.make_request(app, qos_level=level, duration=duration)
        res = agg.aggregate(req)
        if res.admitted:
            return req, res
    raise AssertionError("could not admit any request")


class TestQSA:
    def test_admitted_request_has_consistent_shape(self, grid):
        agg = grid.make_aggregator("qsa")
        req, res = admit_one(grid, agg)
        assert res.status is AggregationStatus.ADMITTED
        assert len(res.peers) == len(res.composed.instances) == 3
        assert res.session is not None
        # Every selected peer hosts its instance.
        for inst, pid in zip(res.composed.instances, res.peers):
            assert pid in grid.catalog.hosts(inst.instance_id)

    def test_composition_satisfies_user_qos(self, grid):
        from repro.core.qos import satisfies

        agg = grid.make_aggregator("qsa")
        req, res = admit_one(grid, agg, level="high")
        _, user_qos = grid.compiler.compile(req, np.random.default_rng(0))
        # compile() draws a fresh format; check against the composed path's
        # own final output instead.
        last = res.composed.instances[-1]
        assert last.qout["quality"] >= 3 or last.qout["quality"] in (1, 2, 3)

    def test_chain_is_qos_consistent(self, grid):
        from repro.core.qos import satisfies

        agg = grid.make_aggregator("qsa")
        _, res = admit_one(grid, agg, app="enhanced-vod")
        chain = res.composed.instances
        for up, down in zip(chain, chain[1:]):
            assert satisfies(up.qout, down.qin)

    def test_resources_actually_reserved(self, grid):
        agg = grid.make_aggregator("qsa")
        _, res = admit_one(grid, agg)
        for inst, pid in zip(res.composed.instances, res.peers):
            peer = grid.directory[pid]
            assert np.all(peer.available.values <= peer.capacity.values)

    def test_session_completes_and_releases(self, grid):
        agg = grid.make_aggregator("qsa")
        _, res = admit_one(grid, agg, duration=2.0)
        grid.sim.run(until=grid.sim.now + 3.0)
        assert grid.ledger.n_active == 0
        assert grid.network.n_reserved_pairs == 0

    def test_lookup_hops_counted(self, grid):
        agg = grid.make_aggregator("qsa")
        _, res = admit_one(grid, agg)
        assert res.lookup_hops > 0

    def test_neighbor_tables_populated_after_selection(self, grid):
        agg = grid.make_aggregator("qsa")
        req, res = admit_one(grid, agg)
        assert len(grid.probing.table(req.peer_id)) > 0


class TestRandom:
    def test_admits_requests(self, grid):
        agg = grid.make_aggregator("random")
        req, res = admit_one(grid, agg)
        assert res.admitted

    def test_chain_is_qos_consistent(self, grid):
        from repro.core.qos import satisfies

        agg = grid.make_aggregator("random")
        _, res = admit_one(grid, agg, app="medical-imaging")
        chain = res.composed.instances
        for up, down in zip(chain, chain[1:]):
            assert satisfies(up.qout, down.qin)

    def test_random_spreads_path_choices(self, grid):
        agg = grid.make_aggregator("random")
        paths = set()
        for _ in range(30):
            req = grid.make_request("video-on-demand", qos_level="low",
                                    duration=0.5)
            res = agg.aggregate(req)
            if res.composed is not None:
                paths.add(tuple(i.instance_id for i in res.composed.instances))
            grid.sim.run()
        assert len(paths) > 3


class TestFixed:
    def test_same_plan_reused(self, grid):
        agg = grid.make_aggregator("fixed")
        app = grid.applications[0]
        fmt = app.user_formats()[0]
        picks = []
        for _ in range(5):
            req = grid.make_request(app.name, qos_level="low", duration=0.5,
                                    out_format=fmt)
            res = agg.aggregate(req)
            if res.admitted:
                picks.append((tuple(i.instance_id for i in res.composed.instances),
                              res.peers))
            grid.sim.run()
        assert len(picks) >= 2
        assert len(set(picks)) == 1  # identical plan every time

    def test_dedicated_peer_departure_fails_requests(self):
        g = P2PGrid(GridConfig(n_peers=300, seed=9))
        agg = g.make_aggregator("fixed")
        app = g.applications[0]
        fmt = app.user_formats()[0]
        req = g.make_request(app.name, qos_level="low", duration=0.5,
                             out_format=fmt)
        res = agg.aggregate(req)
        assert res.admitted
        g.sim.run()
        victim = res.peers[0]
        g._on_peer_departure(victim)
        g.directory.depart(victim, g.sim.now)
        req2 = g.make_request(app.name, qos_level="low", duration=0.5,
                              out_format=fmt)
        res2 = agg.aggregate(req2)
        assert res2.status is AggregationStatus.SELECTION_FAILED


class TestComparative:
    def test_qsa_picks_cheaper_paths_than_random(self, grid):
        """QCS minimizes aggregated resources; random ignores them."""
        qsa = grid.make_aggregator("qsa")
        rnd = grid.make_aggregator("random")
        qsa_scores, rnd_scores = [], []
        for _ in range(20):
            req = grid.make_request("translated-vod", qos_level="low",
                                    duration=0.5)
            a = qsa.aggregate(req)
            b = rnd.aggregate(
                grid.make_request("translated-vod", qos_level="low",
                                  duration=0.5, out_format=None)
            )
            if a.composed:
                qsa_scores.append(a.composed.score)
            if b.composed:
                rnd_scores.append(b.composed.score)
            grid.sim.run()
        assert np.mean(qsa_scores) < np.mean(rnd_scores)
