"""Unit tests for the probing service (staleness, budget, overhead)."""

import pytest

from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.probing.prober import ProbingConfig, ProbingService
from repro.sim import Simulator

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def make(n=10, budget=100, period=1.0, ttl=10.0):
    sim = Simulator()
    d = PeerDirectory(NAMES)
    for i in range(n):
        d.create_peer(rv(100, 100), 1e6, joined_at=-float(i))
    net = NetworkModel(d, seed=0)
    probing = ProbingService(
        sim, d, net, ProbingConfig(budget=budget, period=period, ttl=ttl)
    )
    return sim, d, net, probing


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbingConfig(period=0.0)
        with pytest.raises(ValueError):
            ProbingConfig(ttl=0.0)


class TestVisibility:
    def test_unknown_target_invisible(self):
        sim, d, net, probing = make()
        assert probing.observe(0, 1) is None

    def test_resolved_target_visible(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True)])
        info = probing.observe(0, 1)
        assert info is not None
        assert info.peer_id == 1
        assert list(info.availability.values) == [100.0, 100.0]

    def test_visibility_not_symmetric(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True)])
        assert probing.observe(1, 0) is None

    def test_budget_limits_visibility(self):
        sim, d, net, probing = make(n=10, budget=3)
        probing.resolve(0, [(i, 1, True) for i in range(1, 10)])
        visible = [i for i in range(1, 10) if probing.observe(0, i) is not None]
        assert len(visible) == 3

    def test_departed_target_dropped_on_observe(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True)])
        d.depart(1, 0.0)
        assert probing.observe(0, 1) is None
        assert 1 not in probing.table(0)

    def test_resolve_selection_hops_direct_and_skip_self(self):
        sim, d, net, probing = make()
        probing.resolve_selection_hops(0, [[1, 0], [2, 3]], direct=True)
        assert probing.observe(0, 1) is not None
        assert probing.observe(0, 2) is not None
        assert 0 not in probing.table(0)
        e1 = probing.table(0).get(1, 0.0)
        e2 = probing.table(0).get(2, 0.0)
        assert e1.hop == 1 and e2.hop == 2 and e1.direct


class TestStaleness:
    def test_same_epoch_serves_snapshot(self):
        sim, d, net, probing = make(period=1.0)
        probing.resolve(0, [(1, 1, True)])
        before = probing.observe(0, 1)
        # The target's load changes mid-epoch...
        d[1].reserve(rv(50, 50))
        after = probing.observe(0, 1)
        # ...but the observer still sees the epoch snapshot.
        assert list(after.availability.values) == list(before.availability.values)

    def test_new_epoch_refreshes(self):
        sim, d, net, probing = make(period=1.0)
        probing.resolve(0, [(1, 1, True)])
        probing.observe(0, 1)
        d[1].reserve(rv(50, 50))
        sim.timeout(1.5)
        sim.run()  # advance the clock past the epoch boundary
        info = probing.observe(0, 1)
        assert list(info.availability.values) == [50.0, 50.0]

    def test_snapshot_shared_across_observers(self):
        sim, d, net, probing = make(period=1.0)
        probing.resolve(0, [(2, 1, True)])
        probing.resolve(1, [(2, 1, True)])
        probing.observe(0, 2)
        msgs = probing.probe_messages
        probing.observe(1, 2)  # same epoch: no second probe message
        assert probing.probe_messages == msgs

    def test_uptime_reported_from_snapshot(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(3, 1, True)])
        info = probing.observe(0, 3)
        assert info.uptime == pytest.approx(3.0)  # joined at -3


class TestBandwidth:
    def test_beta_bounded_by_pair_and_links(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True)])
        info = probing.observe(0, 1)
        assert info.bandwidth_to_observer <= net.pair_capacity(1, 0)
        assert info.bandwidth_to_observer <= d[1].avail_up
        assert info.bandwidth_to_observer <= d[0].avail_down

    def test_latency_reported(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True)])
        info = probing.observe(0, 1)
        assert info.latency == net.latency_ms(1, 0)


class TestOverhead:
    def test_overhead_ratio_tracks_budget(self):
        sim, d, net, probing = make(n=10, budget=2)
        probing.resolve(0, [(i, 1, True) for i in range(1, 10)])
        # One table with 2 entries over 10 alive peers = 0.2.
        assert probing.overhead_ratio() == pytest.approx(0.2)

    def test_overhead_zero_without_tables(self):
        sim, d, net, probing = make()
        assert probing.overhead_ratio() == 0.0

    def test_message_counters(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True), (2, 2, False)])
        assert probing.resolution_messages == 2
        probing.observe(0, 1)
        probing.observe(0, 2)
        assert probing.probe_messages == 2

    def test_drop_peer_clears_state(self):
        sim, d, net, probing = make()
        probing.resolve(0, [(1, 1, True)])
        probing.observe(0, 1)
        probing.drop_peer(0)
        assert probing.n_tables == 0
