"""Unit tests for neighbor tables (budget, priority, soft state)."""

import pytest

from repro.probing.neighbors import NeighborEntry, NeighborTable


class TestPriority:
    def test_paper_probe_order(self):
        """1-hop direct < 1-hop indirect < 2-hop direct < 2-hop indirect."""
        p = [
            NeighborEntry(0, 1, True, 0).priority,
            NeighborEntry(0, 1, False, 0).priority,
            NeighborEntry(0, 2, True, 0).priority,
            NeighborEntry(0, 2, False, 0).priority,
        ]
        assert p == sorted(p)
        assert len(set(p)) == 4


class TestResolve:
    def test_add_and_get(self):
        t = NeighborTable(budget=10)
        added = t.resolve([(1, 1, True), (2, 2, False)], now=0.0, ttl=5.0)
        assert added == 2
        assert t.get(1, now=1.0).direct
        assert not t.get(2, now=1.0).direct

    def test_hop_validation(self):
        t = NeighborTable(budget=10)
        with pytest.raises(ValueError):
            t.resolve([(1, 0, True)], now=0.0, ttl=5.0)

    def test_refresh_extends_expiry(self):
        t = NeighborTable(budget=10)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        t.resolve([(1, 1, True)], now=4.0, ttl=5.0)
        assert t.get(1, now=8.0) is not None

    def test_refresh_upgrades_priority(self):
        t = NeighborTable(budget=10)
        t.resolve([(1, 3, False)], now=0.0, ttl=5.0)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        e = t.get(1, now=0.0)
        assert e.hop == 1 and e.direct

    def test_refresh_does_not_downgrade(self):
        t = NeighborTable(budget=10)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        t.resolve([(1, 3, False)], now=0.0, ttl=5.0)
        e = t.get(1, now=0.0)
        assert e.hop == 1 and e.direct


class TestSoftState:
    def test_expired_entry_absent_and_pruned(self):
        t = NeighborTable(budget=10)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        assert t.get(1, now=6.0) is None
        assert len(t) == 0

    def test_active_ids(self):
        t = NeighborTable(budget=10)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        t.resolve([(2, 1, True)], now=0.0, ttl=20.0)
        assert t.active_ids(now=10.0) == [2]

    def test_drop(self):
        t = NeighborTable(budget=10)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        t.drop(1)
        assert 1 not in t


class TestBudget:
    def test_budget_enforced(self):
        t = NeighborTable(budget=3)
        t.resolve([(i, 1, True) for i in range(10)], now=0.0, ttl=5.0)
        assert len(t) == 3

    def test_eviction_prefers_low_benefit(self):
        t = NeighborTable(budget=2)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        t.resolve([(2, 3, False)], now=0.0, ttl=5.0)
        t.resolve([(3, 1, True)], now=0.0, ttl=5.0)
        # The 3-hop indirect entry is the least beneficial.
        assert 2 not in t
        assert 1 in t and 3 in t

    def test_eviction_drops_expired_first(self):
        t = NeighborTable(budget=2)
        t.resolve([(1, 1, True)], now=0.0, ttl=1.0)   # will be expired
        t.resolve([(2, 5, False)], now=0.0, ttl=50.0)
        t.resolve([(3, 5, False)], now=10.0, ttl=50.0)
        assert 1 not in t
        assert 2 in t and 3 in t

    def test_zero_budget_keeps_nothing(self):
        t = NeighborTable(budget=0)
        t.resolve([(1, 1, True)], now=0.0, ttl=5.0)
        assert len(t) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            NeighborTable(budget=-1)
