"""End-to-end tests of the dynamic neighbor resolution protocol (§3.3).

These drive the protocol through the real aggregator and inspect the
neighbor tables it leaves behind: direct relationships at the requesting
host, indirect ones along the chain, hop numbering in the reverse flow
direction, soft-state expiry, and budget behaviour under many
applications.
"""

import pytest

from repro.grid import GridConfig, P2PGrid
from repro.probing.prober import ProbingConfig


def fresh_grid(budget=100, ttl=10.0, seed=33):
    return P2PGrid(GridConfig(
        n_peers=250, seed=seed,
        probing=ProbingConfig(budget=budget, period=1.0, ttl=ttl),
    ))


def admit(grid, app="translated-vod", tries=15, duration=1.0):
    agg = grid.make_aggregator("qsa")
    for _ in range(tries):
        req = grid.make_request(app, qos_level="low", duration=duration)
        res = agg.aggregate(req)
        if res.admitted:
            return req, res
    raise AssertionError("no admission")


class TestResolutionThroughAggregation:
    def test_requester_learns_direct_neighbors_per_hop(self):
        # Budget large enough that no resolved entry is evicted, so every
        # hop relationship is observable.
        grid = fresh_grid(budget=500)
        req, res = admit(grid)
        table = grid.probing.table(req.peer_id)
        # The user-adjacent instance's hosts are 1-hop direct neighbors.
        last_inst = res.composed.instances[-1]
        for pid in list(grid.catalog.hosts(last_inst.instance_id))[:10]:
            if pid == req.peer_id:
                continue
            entry = table.get(pid, grid.sim.now)
            assert entry is not None
            assert entry.direct
            assert entry.hop == 1
        # The source instance's hosts are n-hop direct neighbors (or
        # nearer, when the peer also hosts an earlier-hop instance).
        src_inst = res.composed.instances[0]
        n = len(res.composed.instances)
        for pid in list(grid.catalog.hosts(src_inst.instance_id))[:10]:
            if pid == req.peer_id:
                continue
            entry = table.get(pid, grid.sim.now)
            assert entry is not None
            assert 1 <= entry.hop <= n

    def test_selected_peers_learn_indirect_neighbors(self):
        grid = fresh_grid(budget=500)
        req, res = admit(grid)
        # The first selected peer (user-adjacent) resolved the hosts of
        # the *preceding* services as indirect neighbors.
        first_selected = res.peers[-1]
        if first_selected == req.peer_id:
            pytest.skip("self-selection")
        table = grid.probing.table(first_selected)
        pred_inst = res.composed.instances[-2]
        found_indirect = 0
        for pid in grid.catalog.hosts(pred_inst.instance_id):
            entry = table.get(pid, grid.sim.now)
            if entry is not None and not entry.direct:
                found_indirect += 1
        assert found_indirect > 0

    def test_soft_state_expires(self):
        grid = fresh_grid(ttl=2.0)
        req, res = admit(grid)
        table = grid.probing.table(req.peer_id)
        assert len(table.active_ids(grid.sim.now)) > 0
        grid.sim.run(until=grid.sim.now + 5.0)
        assert table.active_ids(grid.sim.now) == []

    def test_budget_respected_across_many_requests(self):
        grid = fresh_grid(budget=25)
        agg = grid.make_aggregator("qsa")
        requester = grid.directory.alive_ids[0]
        for app in [a.name for a in grid.applications]:
            req = grid.make_request(app, qos_level="low", duration=0.5,
                                    peer_id=requester)
            agg.aggregate(req)
            grid.sim.run()
        assert len(grid.probing.table(requester)) <= 25

    def test_budget_keeps_nearest_hops(self):
        grid = fresh_grid(budget=25)
        agg = grid.make_aggregator("qsa")
        requester = grid.directory.alive_ids[0]
        for app in [a.name for a in grid.applications]:
            req = grid.make_request(app, qos_level="low", duration=0.5,
                                    peer_id=requester)
            agg.aggregate(req)
            grid.sim.run()
        entries = grid.probing.table(requester).entries()
        hops = [e.hop for e in entries]
        # Eviction by benefit: the retained set skews to low hop counts.
        assert sum(1 for h in hops if h <= 2) >= len(hops) * 0.5
