"""Equivalence tests for the probing-plane fast paths.

``resolve_selection_hops``'s fast path pre-trims the triple list before
the neighbor table sees it, and ``observe_many`` batches the per-target
loop of ``observe``.  Both are claimed *exact*: identical table state
(contents AND iteration order, which future evictions depend on) and
identical PeerInfo streams.  These tests drive randomized schedules
through a fast and a slow instance side by side.
"""

import numpy as np

from repro.grid import GridConfig, P2PGrid
from repro.probing.prober import ProbingService


def _table_state(service):
    return {
        observer: [(pid, e.hop, e.direct, e.expires_at)
                   for pid, e in tbl._entries.items()]
        for observer, tbl in service._tables.items()
    }


def test_resolve_selection_hops_fast_path_is_exact():
    grid = P2PGrid(GridConfig(n_peers=120, seed=5))
    slow = ProbingService(
        grid.sim, grid.directory, grid.network, grid.probing.config
    )
    slow.fast_paths = False
    fast = grid.probing
    assert fast.fast_paths

    rng = np.random.default_rng(42)
    pids = list(grid.directory.alive_ids)
    for step in range(200):
        observer = int(rng.choice(pids))
        n_hops = int(rng.integers(1, 5))
        hop_candidates = [
            [int(p) for p in rng.choice(pids, size=rng.integers(1, 30))]
            for _ in range(n_hops)
        ]
        direct = bool(rng.integers(0, 2))
        fast.resolve_selection_hops(observer, hop_candidates, direct)
        slow.resolve_selection_hops(observer, hop_candidates, direct)
        if step % 20 == 19:
            grid.sim.run(until=grid.sim.now + 2.0)  # let soft state age
        assert _table_state(fast) == _table_state(slow)


def test_observe_many_matches_scalar_observe():
    grid = P2PGrid(GridConfig(n_peers=120, seed=5))
    prober = grid.probing
    agg = grid.make_aggregator("qsa")
    rng = np.random.default_rng(7)
    for _ in range(10):  # populate tables + snapshots through real traffic
        req = grid.make_request("video-on-demand", qos_level="average",
                                duration=3.0)
        agg.aggregate(req)
    observers = [o for o, t in prober._tables.items() if len(t)]
    assert observers
    pids = list(grid.directory.alive_ids)
    for observer in observers:
        targets = ([int(p) for p in rng.choice(pids, size=20)]
                   + list(prober._tables[observer]._entries)[:10])
        batched = prober.observe_many(observer, targets)
        scalar = [prober.observe(observer, t) for t in targets]
        assert len(batched) == len(scalar)
        for b, s in zip(batched, scalar):
            if s is None:
                assert b is None
                continue
            assert b is not None
            assert b.peer_id == s.peer_id
            assert b.bandwidth_to_observer == s.bandwidth_to_observer
            assert b.uptime == s.uptime
            assert b.latency == s.latency
            assert b.availability.names == s.availability.names
            assert np.array_equal(b.availability.values,
                                  s.availability.values)
