"""RetryPolicy + budget exhaustion across the hardened consumers."""

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.core.qos import QoSVector
from repro.faults import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.probing.prober import ProbingConfig, ProbingService
from repro.services.model import ServiceInstance
from repro.sessions.admission import (
    TransientAdmissionError,
    reserve_session,
)
from repro.sim import Simulator

NAMES = ("cpu", "memory")


class ScriptedRng:
    """Deterministic stand-in for the faults stream (scripted draws)."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


class TestRetryPolicy:
    def test_capped_exponential_schedule(self):
        p = RetryPolicy(max_retries=5, backoff_base=0.1, backoff_cap=0.5,
                        multiplier=2.0, jitter=0.0)
        assert p.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounds(self):
        p = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, multiplier=1.0,
                        jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(200):
            d = p.delay(1, rng)
            assert 0.05 - 1e-12 <= d <= 0.1 + 1e-12

    def test_no_rng_means_no_jitter(self):
        p = RetryPolicy(backoff_base=0.2, backoff_cap=1.0, jitter=0.9)
        assert p.delay(1) == pytest.approx(0.2)

    def test_seeded_jitter_is_deterministic(self):
        p = RetryPolicy(jitter=0.5)
        a = p.delays(np.random.default_rng(3))
        b = p.delays(np.random.default_rng(3))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.9)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


def build_world(n_peers=4):
    sim = Simulator()
    directory = PeerDirectory(NAMES)
    for _ in range(n_peers):
        directory.create_peer(
            ResourceVector(NAMES, [100.0, 100.0]), 1e6, 0.0
        )
    network = NetworkModel(directory, seed=0)
    return sim, directory, network


def injector_for(sim, *specs, seed=0):
    return FaultInjector(
        sim, FaultPlan(faults=tuple(specs)), np.random.default_rng(seed)
    )


class TestProberExhaustion:
    def make_prober(self, sim, directory, network, injector, retries=2):
        config = ProbingConfig(
            budget=10, retry=RetryPolicy(max_retries=retries, jitter=0.0)
        )
        return ProbingService(
            sim, directory, network, config, injector=injector
        )

    def test_total_loss_degrades_to_unknown(self):
        sim, directory, network = build_world()
        inj = injector_for(sim, FaultSpec(kind="probe_loss", rate=1.0))
        prober = self.make_prober(sim, directory, network, inj, retries=2)
        a, b = directory.alive_ids[:2]
        prober.resolve(a, [(b, 1, True)])
        assert prober.observe(a, b) is None
        # 1 initial + 2 retries, then exhaustion; the neighbor entry and
        # the peer itself survive (a probe failure is not a death).
        assert prober.probe_messages == 3
        assert inj.n_exhausted == 1
        assert prober.table(a).get(b, sim.now) is not None

    def test_exhaustion_serves_stale_snapshot(self):
        sim, directory, network = build_world()
        spec = FaultSpec(kind="probe_loss", rate=1.0, start=0.5)
        inj = injector_for(sim, spec)
        prober = self.make_prober(sim, directory, network, inj)
        a, b = directory.alive_ids[:2]
        prober.resolve(a, [(b, 1, True)])
        fresh = prober.observe(a, b)
        assert fresh is not None  # epoch 0, before the loss window
        sim.run(until=1.2)  # next epoch, loss active
        prober.resolve(a, [(b, 1, True)])
        stale = prober.observe(a, b)
        assert stale is not None
        assert np.array_equal(stale.availability.values,
                              fresh.availability.values)
        assert inj.n_exhausted == 1
        # The degraded snapshot is cached: same epoch, no budget re-burn.
        exhausted_before = inj.n_exhausted
        assert prober.observe(a, b) is not None
        assert inj.n_exhausted == exhausted_before

    def test_budget_counts_attempts(self):
        sim, directory, network = build_world()
        inj = injector_for(sim, FaultSpec(kind="probe_loss", rate=1.0))
        prober = self.make_prober(sim, directory, network, inj, retries=0)
        a, b = directory.alive_ids[:2]
        prober.resolve(a, [(b, 1, True)])
        prober.observe(a, b)
        assert prober.probe_messages == 1  # zero-retry budget: one shot
        assert inj.n_retries == 0
        assert inj.n_exhausted == 1


class TestLookupExhaustion:
    def make_registry(self, fail_rate, retries=2, seed=0):
        from repro.lookup.chord import ChordRing
        from repro.services.applications import default_applications
        from repro.services.catalog import CatalogConfig, generate_catalog
        from repro.services.translator import AnalyticTranslator

        sim, directory, network = build_world(n_peers=10)
        ring = ChordRing(bits=16, seed=0)
        for pid in directory.alive_ids:
            ring.join(pid)
        catalog = generate_catalog(
            default_applications(),
            directory.alive_ids,
            np.random.default_rng(0),
            CatalogConfig(),
            AnalyticTranslator(NAMES),
        )
        from repro.lookup.registry import ServiceRegistry

        registry = ServiceRegistry(ring, catalog)
        inj = injector_for(
            sim, FaultSpec(kind="lookup_failure", rate=fail_rate), seed=seed
        )
        registry.configure_faults(
            inj, RetryPolicy(max_retries=retries, jitter=0.0)
        )
        return registry, inj, catalog, directory

    def test_total_failure_degrades_to_no_record(self):
        registry, inj, catalog, directory = self.make_registry(1.0)
        service = next(iter(catalog.by_service))
        specs, hops = registry.discover_service(
            service, directory.alive_ids[0]
        )
        assert specs == ()
        assert hops > 0  # every retry re-paid its routing hops
        assert inj.n_retries == 2
        assert inj.n_exhausted == 1

    def test_no_faults_finds_records(self):
        registry, inj, catalog, directory = self.make_registry(0.0)
        service = next(iter(catalog.by_service))
        specs, _ = registry.discover_service(service, directory.alive_ids[0])
        assert specs
        assert inj.n_injected == 0

    def test_retry_can_recover(self):
        # At a middling rate some queries fail first and succeed on a
        # retry: retries recorded, but fewer exhaustions than retries.
        registry, inj, catalog, directory = self.make_registry(0.4, seed=5)
        for service in list(catalog.by_service)[:8]:
            for pid in directory.alive_ids[:4]:
                registry.discover_service(service, pid)
        assert inj.n_retries > inj.n_exhausted


class TestAdmissionExhaustion:
    def make_args(self, directory):
        pid = directory.alive_ids[0]
        user = directory.alive_ids[1]
        inst = ServiceInstance(
            "i/0", "s0", QoSVector(), QoSVector(),
            ResourceVector(NAMES, [10.0, 10.0]), 1e4,
        )
        return [inst], [pid], user

    def test_exhaustion_raises_transient(self):
        sim, directory, network = build_world()
        inj = injector_for(sim, FaultSpec(kind="admission_failure", rate=1.0))
        instances, peers, user = self.make_args(directory)
        with pytest.raises(TransientAdmissionError):
            reserve_session(
                directory, network, instances, peers, user,
                injector=inj, retry=RetryPolicy(max_retries=3, jitter=0.0),
            )
        assert inj.n_retries == 3
        assert inj.n_exhausted == 1
        # Nothing stays reserved after the failed attempts.
        peer = directory.get(peers[0])
        assert np.allclose(peer.available.values, peer.capacity.values)
        assert network.n_reserved_pairs == 0

    def test_retry_succeeds_after_transient(self):
        sim, directory, network = build_world()
        plan = FaultPlan((FaultSpec(kind="admission_failure", rate=0.5),))
        # Scripted draws: first attempt fails (0.1 < 0.5), the retry's
        # draw passes (0.9 >= 0.5) -- jitter 0 keeps the script aligned.
        inj = FaultInjector(sim, plan, ScriptedRng([0.1, 0.9]))
        instances, peers, user = self.make_args(directory)
        reserve_session(
            directory, network, instances, peers, user,
            injector=inj, retry=RetryPolicy(max_retries=3, jitter=0.0),
        )
        assert inj.n_retries == 1
        assert inj.n_exhausted == 0
        peer = directory.get(peers[0])
        assert not np.allclose(peer.available.values, peer.capacity.values)
