"""Chaos properties: the books stay balanced under ANY fault plan.

Hypothesis draws randomized fault plans (rates, windows, partitions,
ghosts) and randomized schedules, runs them through the hardened stack,
and asserts the conservation invariants that no injected fault may ever
violate: resources within bounds after every event, and every ledger
drained back to empty once the run ends.  Run under
``HYPOTHESIS_PROFILE=chaos`` (the CI chaos job) for the 200-example
budget.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance
from repro.sessions.admission import AdmissionError
from repro.sessions.session import SessionLedger
from repro.sim import Simulator

from tests.conftest import CHAOS_EXAMPLES

NAMES = ("cpu", "memory")
N_PEERS = 8
CAPACITY = 200.0
ACCESS = 1e5


# -- fault plan strategies ---------------------------------------------------
rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(FAULT_KINDS))
    start = draw(st.floats(min_value=0.0, max_value=10.0))
    end = draw(st.one_of(
        st.none(),
        st.floats(min_value=start + 0.1, max_value=start + 30.0),
    ))
    kwargs = {"kind": kind, "rate": draw(rates), "start": start, "end": end}
    if kind == "probe_delay":
        kwargs["delay"] = draw(st.floats(min_value=0.01, max_value=2.0))
    if kind == "stale_state":
        kwargs["staleness"] = draw(st.floats(min_value=0.1, max_value=10.0))
    if kind == "partition":
        kwargs["fraction"] = draw(st.floats(min_value=0.05, max_value=0.95))
    return FaultSpec(**kwargs)


@st.composite
def fault_plans(draw):
    return FaultPlan(
        faults=tuple(draw(st.lists(fault_specs(), min_size=1, max_size=5)))
    )


events = st.lists(
    st.tuples(
        st.sampled_from(["admit", "advance", "depart"]),
        st.integers(0, 2**31 - 1),
    ),
    min_size=1,
    max_size=30,
)


def check_invariants(directory, network):
    for peer in directory.alive_peers():
        assert np.all(peer.available.values >= -1e-9)
        assert np.all(peer.available.values <= peer.capacity.values + 1e-9)
        assert -1e-9 <= peer.avail_up <= peer.access_bw + 1e-9
        assert -1e-9 <= peer.avail_down <= peer.access_bw + 1e-9


def assert_drained(directory, network, ledger):
    assert ledger.n_active == 0
    assert network.n_reserved_pairs == 0
    for peer in directory.alive_peers():
        assert np.allclose(peer.available.values, peer.capacity.values)
        assert np.isclose(peer.avail_up, peer.access_bw)
        assert np.isclose(peer.avail_down, peer.access_bw)


@settings(max_examples=CHAOS_EXAMPLES, deadline=None)
@given(fault_plans(), events, st.integers(0, 2**31 - 1))
def test_faulted_ledger_conserves_resources(plan, schedule, seed):
    """Random (plan, schedule): no fault may unbalance the books."""
    sim = Simulator()
    directory = PeerDirectory(NAMES)
    for _ in range(N_PEERS):
        directory.create_peer(
            ResourceVector(NAMES, [CAPACITY, CAPACITY]), ACCESS, 0.0
        )
    network = NetworkModel(directory, seed=0)
    injector = FaultInjector(sim, plan, np.random.default_rng(seed))
    ledger = SessionLedger(
        sim, directory, network,
        injector=injector,
        admission_retry=RetryPolicy(max_retries=2),
    )
    req_id = 0

    for op, op_seed in schedule:
        rng = np.random.default_rng(op_seed)
        if op == "admit":
            alive = directory.alive_ids
            if len(alive) < 2:
                continue
            n_hops = int(rng.integers(1, 4))
            peers = [alive[int(rng.integers(len(alive)))] for _ in range(n_hops)]
            user = alive[int(rng.integers(len(alive)))]
            instances = [
                ServiceInstance(
                    f"i/{req_id}/{k}",
                    f"s{k}",
                    QoSVector(),
                    QoSVector(),
                    ResourceVector(NAMES, rng.uniform(1, 80, 2)),
                    float(rng.uniform(1e3, 5e4)),
                )
                for k in range(n_hops)
            ]
            try:
                ledger.admit(req_id, user, instances, peers,
                             duration=float(rng.uniform(0.5, 5.0)))
            except AdmissionError:
                pass  # rejected (shortage OR exhausted transient): no residue
            req_id += 1
        elif op == "advance":
            sim.run(until=sim.now + float(rng.uniform(0.1, 3.0)))
        else:  # depart
            alive = directory.alive_ids
            if len(alive) <= 2:
                continue
            victim = alive[int(rng.integers(len(alive)))]
            injector.note_departure(victim)
            ledger.fail_peer(victim)
            directory.depart(victim, sim.now)
        check_invariants(directory, network)

    sim.run()
    assert_drained(directory, network, ledger)


@settings(max_examples=max(CHAOS_EXAMPLES // 5, 8), deadline=None)
@given(fault_plans(), st.integers(0, 2**31 - 1))
def test_faulted_grid_run_conserves_resources(plan, seed):
    """A full faulted grid run (churn + recovery) drains back to empty."""
    from repro.experiments.config import ExperimentConfig
    from repro.grid import GridConfig, P2PGrid
    from repro.network.churn import ChurnConfig
    from repro.sessions.recovery import RecoveryConfig
    from repro.workload.generator import RequestGenerator, WorkloadConfig

    config = ExperimentConfig(
        grid=GridConfig(
            n_peers=30,
            seed=seed % 1000,
            faults=plan,
            churn=ChurnConfig(rate_per_min=1.0),
            recovery=RecoveryConfig(
                detection_delay=0.3,
                retry=RetryPolicy(max_retries=2, backoff_base=0.05),
            ),
        ),
        workload=WorkloadConfig(rate_per_min=6.0, horizon=5.0,
                                duration_range=(0.5, 3.0)),
    )
    grid = P2PGrid(config.grid)
    aggregator = grid.make_aggregator("qsa")
    generator = RequestGenerator(
        grid.sim,
        config.workload,
        grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=lambda req: aggregator.aggregate(req),
        rng=grid.rngs.stream("workload"),
    )
    generator.start()
    grid.sim.run(until=config.workload.horizon)
    if grid.churn is not None:
        grid.churn.stop()
    grid.sim.run()
    check_invariants(grid.directory, grid.network)
    assert_drained(grid.directory, grid.network, grid.ledger)


@settings(max_examples=max(CHAOS_EXAMPLES // 5, 8), deadline=None)
@given(fault_plans(), st.integers(0, 2**31 - 1))
def test_faulted_run_is_reproducible(plan, seed):
    """Same (seed, plan) twice: identical outcome counters and tallies."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment
    from repro.grid import GridConfig
    from repro.workload.generator import WorkloadConfig

    def run():
        config = ExperimentConfig(
            grid=GridConfig(n_peers=25, seed=seed % 1000, faults=plan),
            workload=WorkloadConfig(rate_per_min=5.0, horizon=3.0,
                                    duration_range=(0.5, 2.0)),
        )
        r = run_experiment(config)
        return (r.n_requests, r.success_ratio, r.n_faults_injected,
                r.n_retries, r.n_retries_exhausted, r.fault_summary)

    assert run() == run()
