"""Property tests: no cache may ever serve stale membership state.

Hypothesis drives randomized join/leave/lookup interleavings against

* a fast-path :class:`~repro.lookup.chord.ChordRing` mirrored by an
  uncached twin -- every lookup must land on the same node with the same
  hop count, and the responsible node must match a brute-force successor
  computation over the *current* membership (a joined/departed peer can
  therefore never be served from a stale route entry);
* a :class:`~repro.lookup.registry.ServiceRegistry` under host-set churn
  -- a departed peer must never appear in a discovered host set, and a
  joined peer must appear immediately.

Run under ``HYPOTHESIS_PROFILE=chaos`` for the CI chaos budget.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lookup.chord import ChordRing
from repro.lookup.registry import ServiceRegistry
from repro.services.applications import default_applications
from repro.services.catalog import CatalogConfig, generate_catalog

# op = (kind, a, b): kind 0 = join, 1 = leave, 2 = lookup
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=60,
)

KEYS = [f"key/{i}" for i in range(12)]


def _brute_force_responsible(ring, key):
    """Successor responsibility recomputed from scratch every call."""
    key_id = ring.key_id(key)
    ids = sorted(ring._ids)
    for node_id in ids:
        if node_id >= key_id:
            return node_id
    return ids[0]


@settings(deadline=None)
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=7))
def test_route_cache_never_stale_under_churn(ops, seed):
    fast = ChordRing(bits=16, seed=seed)
    slow = ChordRing(bits=16, seed=seed)
    slow.fast_paths = False
    members = []
    next_pid = 0
    for _ in range(8):  # seed membership
        fast.join(next_pid)
        slow.join(next_pid)
        members.append(next_pid)
        next_pid += 1
    for kind, a, b in ops:
        if kind == 0:
            fast.join(next_pid)
            slow.join(next_pid)
            members.append(next_pid)
            next_pid += 1
        elif kind == 1 and len(members) > 2:
            pid = members.pop(a % len(members))
            fast.leave(pid)
            slow.leave(pid)
        else:
            key = KEYS[a % len(KEYS)]
            from_peer = members[b % len(members)]
            node_f, hops_f = fast.lookup(key, from_peer)
            node_s, hops_s = slow.lookup(key, from_peer)
            assert node_f.node_id == node_s.node_id
            assert hops_f == hops_s
            # ... and both answers reflect the *current* membership.
            assert node_f.node_id == _brute_force_responsible(fast, key)
            assert node_f.peer_id in members
    assert fast.n_lookups == slow.n_lookups
    assert fast.total_hops == slow.total_hops


# op = (kind, a, b): kind 0 = depart a host, 1 = rejoin, 2 = discover
registry_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=40,
)


@settings(deadline=None)
@given(ops=registry_ops)
def test_host_sets_never_stale_under_churn(ops):
    rng = np.random.default_rng(0)
    apps = default_applications()[:2]
    core = list(range(50))          # never depart: the ring stays alive
    hosts_pool = list(range(50, 90))
    catalog = generate_catalog(
        apps,
        core + hosts_pool,
        rng,
        CatalogConfig(instances_per_service=(2, 3), replicas_per_instance=(3, 6)),
    )
    ring = ChordRing(bits=24, seed=2)
    for pid in core + hosts_pool:
        ring.join(pid)
    registry = ServiceRegistry(ring, catalog)

    iids = sorted(catalog.instances)[:8]
    expected = {iid: set(catalog.hosts(iid)) for iid in iids}
    hosted_by = {}
    for iid in iids:
        for pid in expected[iid]:
            hosted_by.setdefault(pid, []).append(iid)
    departed = []

    for kind, a, b in ops:
        if kind == 0 and hosted_by:
            pid = sorted(hosted_by)[a % len(hosted_by)]
            if pid in core:
                continue
            hosted = hosted_by.pop(pid)
            registry.peer_departed(pid, hosted)
            for iid in hosted:
                expected[iid].discard(pid)
            departed.append((pid, hosted))
        elif kind == 1 and departed:
            pid, hosted = departed.pop(a % len(departed))
            registry.peer_joined(pid, hosted)
            hosted_by[pid] = hosted
            for iid in hosted:
                expected[iid].add(pid)
        else:
            iid = iids[a % len(iids)]
            from_peer = core[b % len(core)]
            found, _ = registry.discover_hosts(iid, from_peer)
            # Exactness: never a departed peer, always every joined one.
            assert found == frozenset(expected[iid])
    # The cache was actually exercised along the way (or no repeat reads
    # happened -- either way the split bookkeeping must balance).
    assert (registry.n_routed_discoveries + registry.n_cached_discoveries
            == registry.n_discoveries)
