"""FaultPlan / FaultSpec: validation, windows and JSON round-trips."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_every_kind_constructs(self):
        kwargs = {
            "probe_delay": {"delay": 1.0},
            "stale_state": {"staleness": 2.0},
        }
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, rate=0.5, **kwargs.get(kind, {}))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray")

    @pytest.mark.parametrize("rate", [-0.1, 1.01])
    def test_rate_bounds(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="probe_loss", rate=rate)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty fault window"):
            FaultSpec(kind="probe_loss", rate=0.1, start=5.0, end=5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultSpec(kind="probe_loss", rate=0.1, start=-1.0)

    def test_probe_delay_needs_mean(self):
        with pytest.raises(ValueError, match="positive mean delay"):
            FaultSpec(kind="probe_delay", rate=0.1)

    def test_stale_state_needs_staleness(self):
        with pytest.raises(ValueError, match="positive staleness"):
            FaultSpec(kind="stale_state", rate=0.1)

    @pytest.mark.parametrize("fraction", [0.0, 1.0])
    def test_partition_fraction_open_interval(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec(kind="partition", fraction=fraction)

    def test_window_activity(self):
        spec = FaultSpec(kind="probe_loss", rate=0.1, start=2.0, end=4.0)
        assert not spec.active(1.9)
        assert spec.active(2.0)
        assert spec.active(3.9)
        assert not spec.active(4.0)
        open_ended = FaultSpec(kind="probe_loss", rate=0.1, start=2.0)
        assert open_ended.active(1e9)


class TestFaultPlan:
    def test_empty_plan_is_inactive(self):
        assert not FaultPlan().active
        assert FaultPlan((FaultSpec(kind="probe_loss", rate=0.1),)).active

    def test_specs_filters_by_kind_in_order(self):
        a = FaultSpec(kind="probe_loss", rate=0.1)
        b = FaultSpec(kind="lookup_failure", rate=0.2)
        c = FaultSpec(kind="probe_loss", rate=0.3)
        plan = FaultPlan((a, b, c))
        assert plan.specs("probe_loss") == (a, c)
        assert plan.specs("partition") == ()
        with pytest.raises(ValueError, match="unknown fault kind"):
            plan.specs("nope")

    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="probe_loss", rate=0.2),
                FaultSpec(kind="probe_delay", rate=0.1, delay=0.5),
                FaultSpec(kind="stale_state", rate=0.5, staleness=3.0),
                FaultSpec(kind="partition", start=10.0, end=20.0,
                          fraction=0.3),
            ),
            name="round-trip",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            '{"name": "file", "faults": ['
            '{"kind": "probe_loss", "rate": 0.25},'
            '{"kind": "partition", "start": 1, "end": 2, "fraction": 0.4}'
            "]}"
        )
        plan = FaultPlan.load(str(path))
        assert plan.name == "file"
        assert len(plan.faults) == 2
        assert plan.faults[0].rate == 0.25

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError, match="must be an object"):
            FaultPlan.from_dict([])
        with pytest.raises(ValueError, match="must be a list"):
            FaultPlan.from_dict({"faults": 3})
        with pytest.raises(ValueError, match="missing 'kind'"):
            FaultPlan.from_dict({"faults": [{"rate": 0.5}]})
        with pytest.raises(ValueError, match="unknown fields"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "probe_loss", "severity": 9}]}
            )

    def test_str_mentions_kinds_and_windows(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="probe_loss", rate=0.2),
                FaultSpec(kind="partition", start=1.0, end=2.0,
                          fraction=0.3),
            ),
            name="lossy",
        )
        text = str(plan)
        assert "lossy" in text
        assert "probe_loss(rate=0.2)" in text
        assert "partition(fraction=0.3)" in text
        assert "(empty)" in str(FaultPlan())
