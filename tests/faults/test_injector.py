"""FaultInjector: seeded decisions, ghosts, partitions and bookkeeping."""

import numpy as np

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.telemetry.catalog import EVENT_CATALOG


def make_injector(*specs, seed=0, telemetry=None, sim=None):
    sim = sim or Simulator()
    plan = FaultPlan(faults=tuple(specs))
    rng = np.random.default_rng(seed)
    return FaultInjector(sim, plan, rng, telemetry=telemetry), sim


class TestDecisions:
    def test_empty_plan_never_fires(self):
        inj, _ = make_injector()
        for _ in range(50):
            assert not inj.probe_lost(1)
            assert inj.probe_delay(1) == 0.0
            assert not inj.lookup_fails("k", 1, 2)
            assert not inj.admission_fails("admission", peer=1)
            assert not inj.partitioned(1, 2)
        assert inj.n_injected == 0

    def test_rate_one_always_fires(self):
        inj, _ = make_injector(FaultSpec(kind="probe_loss", rate=1.0))
        assert all(inj.probe_lost(i) for i in range(20))
        assert inj.n_injected == 20
        assert inj.counts[("probe_loss", "probe")] == 20

    def test_window_gates_firing(self):
        inj, sim = make_injector(
            FaultSpec(kind="probe_loss", rate=1.0, start=5.0, end=6.0)
        )
        assert not inj.probe_lost(1)
        sim.run(until=5.5)
        assert inj.probe_lost(1)
        sim.run(until=6.0)
        assert not inj.probe_lost(1)

    def test_probe_delay_positive_when_firing(self):
        inj, _ = make_injector(
            FaultSpec(kind="probe_delay", rate=1.0, delay=0.5)
        )
        delays = [inj.probe_delay(1) for _ in range(50)]
        assert all(d > 0 for d in delays)
        # Exponential(0.5): the sample mean should land near the mean.
        assert 0.2 < np.mean(delays) < 1.0

    def test_same_seed_same_decisions(self):
        spec = FaultSpec(kind="lookup_failure", rate=0.5)
        a, _ = make_injector(spec, seed=42)
        b, _ = make_injector(spec, seed=42)
        seq_a = [a.lookup_fails("k", 1, 2) for _ in range(100)]
        seq_b = [b.lookup_fails("k", 1, 2) for _ in range(100)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)


class TestGhosts:
    def test_ghost_lingers_then_expires(self):
        inj, sim = make_injector(
            FaultSpec(kind="stale_state", rate=1.0, staleness=3.0)
        )
        inj.note_departure(7)
        assert inj.ghost_active(7)
        sim.run(until=2.9)
        assert inj.ghost_active(7)
        sim.run(until=3.0)
        assert not inj.ghost_active(7)
        # Expired ghosts are dropped, not re-checked forever.
        assert not inj.ghost_active(7)

    def test_no_stale_spec_no_ghost(self):
        inj, _ = make_injector(FaultSpec(kind="probe_loss", rate=1.0))
        inj.note_departure(7)
        assert not inj.ghost_active(7)


class TestPartitions:
    def test_cut_is_stable_and_symmetric(self):
        inj, _ = make_injector(FaultSpec(kind="partition", fraction=0.5))
        pairs = [(a, b) for a in range(10) for b in range(a + 1, 10)]
        first = {p: inj.partitioned(*p) for p in pairs}
        assert any(first.values()) and not all(first.values())
        for (a, b), cut in first.items():
            assert inj.partitioned(a, b) == cut == inj.partitioned(b, a)

    def test_self_pair_never_cut(self):
        inj, _ = make_injector(FaultSpec(kind="partition", fraction=0.5))
        assert not any(inj.partitioned(i, i) for i in range(20))

    def test_cut_respects_window(self):
        inj, sim = make_injector(
            FaultSpec(kind="partition", start=5.0, end=6.0, fraction=0.5)
        )
        cut_pairs = []
        sim.run(until=5.5)
        for a in range(10):
            for b in range(a + 1, 10):
                if inj.partitioned(a, b):
                    cut_pairs.append((a, b))
        assert cut_pairs
        sim.run(until=6.0)
        assert not any(inj.partitioned(a, b) for a, b in cut_pairs)

    def test_different_seeds_cut_differently(self):
        spec = FaultSpec(kind="partition", fraction=0.5)
        a, _ = make_injector(spec, seed=1)
        b, _ = make_injector(spec, seed=2)
        pairs = [(i, j) for i in range(12) for j in range(i + 1, 12)]
        assert [a.partitioned(*p) for p in pairs] != \
            [b.partitioned(*p) for p in pairs]


class TestTelemetry:
    def test_events_emitted_and_cataloged(self):
        sim = Simulator()
        tel = Telemetry.for_simulator(sim, enabled=True)
        inj, _ = make_injector(
            FaultSpec(kind="probe_loss", rate=1.0), telemetry=tel, sim=sim
        )
        inj.probe_lost(3)
        inj.retry_attempt("probe", 1, 0.05, target=3)
        inj.retry_exhausted("probe", attempts=4, target=3)
        names = [ev.name for ev in tel.bus.events()]
        assert names == ["fault.injected", "retry.attempt", "retry.exhausted"]
        for name in names:
            assert name in EVENT_CATALOG
        assert tel.metrics.counter("fault.injected").value == 1
        assert tel.metrics.counter("retry.attempts").value == 1
        assert tel.metrics.counter("retry.exhausted").value == 1

    def test_summary_tallies(self):
        inj, _ = make_injector(FaultSpec(kind="probe_loss", rate=1.0))
        inj.probe_lost(1)
        inj.probe_lost(2)
        inj.retry_attempt("probe", 1, 0.05)
        text = inj.summary()
        assert "2 injected" in text
        assert "1 retries" in text
        assert "probe_loss@probe" in text
