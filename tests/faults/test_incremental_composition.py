"""Property tests: the incremental consistency index never serves stale
composition state.

Generalizes the cache-invalidation suite's churn pattern to the
vectorized QCS kernel: Hypothesis drives randomized admit / depart /
compose interleavings against one *long-lived*
:class:`~repro.core.composition_vec.VectorizedComposer` (whose pair
matrices and plan cache are patched incrementally across the whole
history) and checks every compose against two from-scratch oracles --

* a fresh ``VectorizedComposer`` built for just that request (nothing
  to patch, nothing cached), and
* the reference DP kernel;

all three must agree exactly (path, score, total, error behaviour).  A
final bookkeeping check asserts the index really is incremental: the
instance universes only ever grow, and adjacency rows are patched in
(never rebuilt wholesale) as admissions land.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.composition import CompositionError, compose_qcs
from repro.core.composition_vec import VectorizedComposer
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e7)
SERVICES = ("stage0", "stage1", "stage2")
PATH = AbstractServicePath("app", SERVICES)

_IDS = itertools.count()

# op = (kind, a, b, c): kind 0 = admit, 1 = depart, 2/3 = compose
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


def _mint(service_index, quality, cpu, consistent):
    k = service_index
    return ServiceInstance(
        instance_id=f"inc{next(_IDS)}",
        service=SERVICES[k],
        qin=QoSVector(format=f"f{k}", quality=Interval(1, 3)),
        qout=QoSVector(
            format=f"f{k + 1}" if consistent else "off", quality=quality
        ),
        resources=ResourceVector(NAMES, [cpu, cpu]),
        bandwidth=100.0,
    )


def _compose_all_ways(live, candidates, user_qos):
    """(outcome, message) from the live composer and both oracles."""
    outcomes = []
    for fn in (
        lambda: live.compose(PATH, candidates, user_qos),
        lambda: VectorizedComposer(WEIGHTS).compose(
            PATH, candidates, user_qos
        ),
        lambda: compose_qcs(PATH, candidates, user_qos, WEIGHTS, method="dp"),
    ):
        try:
            outcomes.append((fn(), None))
        except CompositionError as exc:
            outcomes.append((None, str(exc)))
    return outcomes


@settings(deadline=None, max_examples=60)
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=7))
def test_patched_index_equals_from_scratch_rebuild(ops, seed):
    live = VectorizedComposer(WEIGHTS)
    # Seed membership: two consistent instances per service, so early
    # composes generally succeed and departures bite.
    visible = {
        s: [_mint(k, 3, 10.0 * (j + 1), True) for j in range(2)]
        for k, s in enumerate(SERVICES)
    }
    for kind, a, b, c in ops:
        k = a % len(SERVICES)
        service = SERVICES[k]
        if kind == 0:  # admission: a brand-new instance becomes visible
            visible[service].append(
                _mint(k, 1 + b % 3, 10.0 * (1 + b % 8), b % 5 != 0)
            )
        elif kind == 1 and len(visible[service]) > 1:  # departure
            visible[service].pop(b % len(visible[service]))
        else:  # compose against the current membership
            user_qos = QoSVector(
                format=f"f{len(SERVICES)}", quality=Interval(c, 3)
            )
            candidates = {s: list(v) for s, v in visible.items()}
            patched, scratch, reference = _compose_all_ways(
                live, candidates, user_qos
            )
            assert patched[1] == scratch[1] == reference[1], (
                patched[1], scratch[1], reference[1]
            )
            if patched[0] is not None:
                for other in (scratch[0], reference[0]):
                    assert patched[0].instances == other.instances
                    assert patched[0].score == other.score
                    assert patched[0].total == other.total
    # The long-lived index grew monotonically: every distinct instance
    # ever admitted is still registered (departures deregister nothing),
    # and any adjacency work after the seed rows arrived incrementally.
    for k, s in enumerate(SERVICES):
        uni = live.index.universe(s)
        assert uni.version == len(uni.ids) == len(set(uni.ids))


def test_admissions_patch_rows_instead_of_rebuilding():
    live = VectorizedComposer(WEIGHTS)
    visible = {
        s: [_mint(k, 3, 10.0, True)] for k, s in enumerate(SERVICES)
    }
    user_qos = QoSVector(format=f"f{len(SERVICES)}", quality=Interval(1, 3))
    live.compose(PATH, visible, user_qos)
    baseline_rows = live.index.patched_rows
    matrices = live.index.n_pair_matrices
    # One admission per service: the pair matrices must be extended by
    # exactly the new rows/columns -- one new row and one new column per
    # adjacent pair -- with no wholesale rebuild (matrix count stable).
    for k, s in enumerate(SERVICES):
        visible[s].append(_mint(k, 3, 20.0, True))
    second = live.compose(PATH, visible, user_qos)
    assert live.index.n_pair_matrices == matrices
    grown = live.index.patched_rows - baseline_rows
    assert grown == 2 * (len(SERVICES) - 1)
    # ... and the patched index still answers exactly like the oracle.
    reference = compose_qcs(PATH, visible, user_qos, WEIGHTS, method="dp")
    assert second.instances == reference.instances
    assert second.score == reference.score
    assert second.total == reference.total
