"""Unit tests for peers and the peer directory."""

import pytest

from repro.core.resources import ResourceVector
from repro.network.peer import Peer, PeerDirectory

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def make_peer(pid=0, cpu=100.0, mem=100.0, access=1e6, joined=0.0):
    return Peer(pid, rv(cpu, mem), access, joined)


class TestPeer:
    def test_initial_availability_equals_capacity(self):
        p = make_peer(cpu=500, mem=500)
        assert p.available == p.capacity
        assert p.available is not p.capacity  # independent copies

    def test_positive_access_required(self):
        with pytest.raises(ValueError):
            make_peer(access=0)

    def test_uptime(self):
        p = make_peer(joined=10.0)
        assert p.uptime(25.0) == 15.0
        assert p.uptime(5.0) == 0.0  # clamped

    def test_uptime_frozen_after_departure(self):
        p = make_peer(joined=0.0)
        p.departed_at = 30.0
        assert p.uptime(100.0) == 30.0
        assert not p.alive

    def test_reserve_release_cycle(self):
        p = make_peer(cpu=100, mem=100)
        assert p.reserve(rv(60, 60))
        assert list(p.available.values) == [40.0, 40.0]
        assert not p.reserve(rv(50, 50))  # does not fit
        assert list(p.available.values) == [40.0, 40.0]  # unchanged
        p.release(rv(60, 60))
        assert p.available == p.capacity

    def test_release_over_capacity_raises(self):
        p = make_peer()
        with pytest.raises(ValueError):
            p.release(rv(1, 1))

    def test_bandwidth_up_down_independent(self):
        p = make_peer(access=1000.0)
        assert p.reserve_up(800.0)
        assert p.reserve_down(900.0)
        assert not p.reserve_up(300.0)
        assert p.avail_up == pytest.approx(200.0)
        assert p.avail_down == pytest.approx(100.0)
        p.release_up(800.0)
        assert p.avail_up == pytest.approx(1000.0)

    def test_bandwidth_release_clamped_to_capacity(self):
        p = make_peer(access=1000.0)
        p.release_down(500.0)  # spurious release
        assert p.avail_down == 1000.0


class TestPeerDirectory:
    def make(self, n=5):
        d = PeerDirectory(NAMES)
        for i in range(n):
            d.create_peer(rv(100 + i, 100 + i), 1e6, joined_at=float(i))
        return d

    def test_ids_sequential(self):
        d = self.make(3)
        assert d.alive_ids == [0, 1, 2]
        assert len(d) == 3

    def test_getitem_and_get(self):
        d = self.make(2)
        assert d[1].peer_id == 1
        assert d.get(99) is None
        assert 1 in d and 99 not in d

    def test_depart_updates_alive(self):
        d = self.make(4)
        d.depart(2, now=10.0)
        assert d.alive_ids == [0, 1, 3]
        assert d.n_alive == 3
        assert not d.is_alive(2)
        assert d[2].departed_at == 10.0

    def test_double_departure_rejected(self):
        d = self.make(2)
        d.depart(0, 1.0)
        with pytest.raises(ValueError):
            d.depart(0, 2.0)

    def test_create_after_departure_gets_fresh_id(self):
        d = self.make(2)
        d.depart(1, 1.0)
        p = d.create_peer(rv(5, 5), 1e6, joined_at=1.0)
        assert p.peer_id == 2
        assert d.alive_ids == [0, 2]

    def test_uptimes_aligned_with_ids(self):
        d = self.make(3)
        up, ids = d.uptimes(now=10.0)
        assert ids == [0, 1, 2]
        assert list(up) == [10.0, 9.0, 8.0]

    def test_availability_matrix(self):
        d = self.make(3)
        d[0].reserve(rv(50, 50))
        m = d.availability_matrix([0, 2])
        assert m.shape == (2, 2)
        assert list(m[0]) == [50.0, 50.0]
        assert list(m[1]) == [102.0, 102.0]

    def test_availability_matrix_empty(self):
        d = self.make(1)
        assert d.availability_matrix([]).shape == (0, 2)

    def test_alive_peers_iterates_alive_only(self):
        d = self.make(3)
        d.depart(0, 0.0)
        assert [p.peer_id for p in d.alive_peers()] == [1, 2]
