"""Unit tests for pairwise classes and bandwidth accounting."""

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import (
    BANDWIDTH_CLASSES,
    LATENCY_CLASSES_MS,
    NetworkModel,
    PairwiseClasses,
)

NAMES = ("cpu", "memory")


def make_net(n=10, access=1e6, seed=0, weights=None):
    d = PeerDirectory(NAMES)
    for _ in range(n):
        d.create_peer(ResourceVector(NAMES, [100, 100]), access, 0.0)
    return d, NetworkModel(d, seed=seed, bandwidth_weights=weights)


class TestPairwiseClasses:
    def test_deterministic_and_symmetric(self):
        pc = PairwiseClasses(seed=3, n_classes=4)
        assert pc.class_index(5, 9) == pc.class_index(9, 5)
        assert pc.class_index(5, 9) == PairwiseClasses(3, 4).class_index(5, 9)

    def test_seed_changes_assignment(self):
        a = PairwiseClasses(1, 4)
        b = PairwiseClasses(2, 4)
        diffs = sum(
            a.class_index(i, j) != b.class_index(i, j)
            for i in range(20)
            for j in range(i + 1, 20)
        )
        assert diffs > 0

    def test_uniform_marginal_distribution(self):
        pc = PairwiseClasses(seed=0, n_classes=4)
        counts = np.zeros(4)
        for i in range(100):
            for j in range(i + 1, 100):
                counts[pc.class_index(i, j)] += 1
        frac = counts / counts.sum()
        assert np.all(np.abs(frac - 0.25) < 0.02)

    def test_weighted_marginal_distribution(self):
        w = (0.5, 0.3, 0.15, 0.05)
        pc = PairwiseClasses(seed=0, n_classes=4, weights=w)
        counts = np.zeros(4)
        for i in range(120):
            for j in range(i + 1, 120):
                counts[pc.class_index(i, j)] += 1
        frac = counts / counts.sum()
        assert np.all(np.abs(frac - np.array(w)) < 0.02)

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            PairwiseClasses(0, 4, weights=(1.0, 0.0))
        with pytest.raises(ValueError):
            PairwiseClasses(0, 2, weights=(-1.0, 2.0))


class TestNetworkModel:
    def test_pair_capacity_in_classes(self):
        _, net = make_net()
        for a in range(5):
            for b in range(a + 1, 5):
                assert net.pair_capacity(a, b) in BANDWIDTH_CLASSES

    def test_latency_in_classes(self):
        _, net = make_net()
        assert net.latency_ms(0, 1) in LATENCY_CLASSES_MS
        assert net.latency_ms(0, 0) == 0.0

    def test_self_pair_infinite(self):
        _, net = make_net()
        assert net.pair_capacity(3, 3) == float("inf")
        assert net.available_bandwidth(3, 3) == float("inf")

    def test_available_includes_access_links(self):
        d, net = make_net(access=500.0)
        # Pair class is way above the access link, so access dominates.
        assert net.available_bandwidth(0, 1) <= 500.0

    def test_reserve_decrements_and_release_restores(self):
        d, net = make_net(access=1e6)
        before = net.available_bandwidth(0, 1)
        assert net.reserve(0, 1, 200.0)
        assert net.available_bandwidth(0, 1) == pytest.approx(before - 200.0)
        assert d[0].avail_up == pytest.approx(1e6 - 200.0)
        assert d[1].avail_down == pytest.approx(1e6 - 200.0)
        net.release(0, 1, 200.0)
        assert net.available_bandwidth(0, 1) == pytest.approx(before)
        assert net.n_reserved_pairs == 0

    def test_reserve_rejects_when_insufficient(self):
        d, net = make_net(access=100.0)
        assert not net.reserve(0, 1, 150.0)
        # State unchanged after rejection.
        assert d[0].avail_up == 100.0
        assert d[1].avail_down == 100.0

    def test_reserve_fills_pair_capacity(self):
        d, net = make_net(access=1e9)
        cap = net.pair_capacity(0, 1)
        assert net.reserve(0, 1, cap)
        assert net.available_bandwidth(0, 1) == 0.0
        assert not net.reserve(0, 1, 1.0)

    def test_directional_reservations_share_pair(self):
        """Flows in both directions share the bottleneck capacity."""
        d, net = make_net(access=1e9)
        cap = net.pair_capacity(0, 1)
        assert net.reserve(0, 1, cap * 0.6)
        assert not net.reserve(1, 0, cap * 0.6)
        assert net.reserve(1, 0, cap * 0.4)

    def test_zero_reservation_noop(self):
        d, net = make_net()
        assert net.reserve(0, 1, 0.0)
        assert net.n_reserved_pairs == 0

    def test_negative_reservation_rejected(self):
        _, net = make_net()
        with pytest.raises(ValueError):
            net.reserve(0, 1, -5.0)

    def test_release_tolerates_departed_peers(self):
        d, net = make_net()
        assert net.reserve(0, 1, 100.0)
        d.depart(1, 0.0)
        net.release(0, 1, 100.0)  # must not raise
        assert net.n_reserved_pairs == 0

    def test_available_bandwidth_batch(self):
        d, net = make_net(n=6)
        sources = np.array([0, 1, 2])
        batch = net.available_bandwidth_batch(sources, dst=5)
        for i, src in enumerate(sources):
            assert batch[i] == net.available_bandwidth(int(src), 5)

    def test_access_capacity_bounds_total_flows(self):
        d, net = make_net(access=1000.0)
        # Peer 0 fans out to many destinations; uplink caps the total.
        total = 0.0
        for dst in range(1, 10):
            if net.reserve(0, dst, 300.0):
                total += 300.0
        assert total <= 1000.0
        assert d[0].avail_up == pytest.approx(1000.0 - total)
