"""Property tests: bandwidth reservation accounting never corrupts."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel

NAMES = ("cpu", "memory")
N_PEERS = 6
ACCESS = 1e5


def build():
    d = PeerDirectory(NAMES)
    for _ in range(N_PEERS):
        d.create_peer(ResourceVector(NAMES, [100, 100]), ACCESS, 0.0)
    return d, NetworkModel(d, seed=0)


ops = st.lists(
    st.tuples(
        st.integers(0, N_PEERS - 1),       # src
        st.integers(0, N_PEERS - 1),       # dst
        st.floats(min_value=1.0, max_value=8e4, allow_nan=False),  # bw
    ),
    min_size=1,
    max_size=40,
)


def check_bounds(directory, network):
    for peer in directory.alive_peers():
        assert -1e-6 <= peer.avail_up <= peer.access_bw + 1e-6
        assert -1e-6 <= peer.avail_down <= peer.access_bw + 1e-6
    for a in range(N_PEERS):
        for b in range(a + 1, N_PEERS):
            reserved = network.pair_reserved(a, b)
            assert reserved >= -1e-6
            assert reserved <= network.pair_capacity(a, b) + 1e-6


@settings(max_examples=50, deadline=None)
@given(ops)
def test_reserve_release_roundtrip_restores_everything(schedule):
    directory, network = build()
    held = []
    for src, dst, bw in schedule:
        if network.reserve(src, dst, bw):
            held.append((src, dst, bw))
        check_bounds(directory, network)
    for src, dst, bw in reversed(held):
        network.release(src, dst, bw)
        check_bounds(directory, network)
    assert network.n_reserved_pairs == 0
    for peer in directory.alive_peers():
        assert np.isclose(peer.avail_up, ACCESS)
        assert np.isclose(peer.avail_down, ACCESS)


@settings(max_examples=50, deadline=None)
@given(ops)
def test_beta_never_exceeds_component_bounds(schedule):
    directory, network = build()
    for src, dst, bw in schedule:
        network.reserve(src, dst, bw)
        beta = network.available_bandwidth(src, dst)
        if src != dst:
            assert beta <= directory[src].avail_up + 1e-6
            assert beta <= directory[dst].avail_down + 1e-6
            assert beta <= network.pair_capacity(src, dst) - (
                network.pair_reserved(src, dst)
            ) + 1e-6
            assert beta >= 0.0


@settings(max_examples=50, deadline=None)
@given(ops)
def test_rejected_reservations_leave_no_trace(schedule):
    directory, network = build()
    for src, dst, bw in schedule:
        before_up = directory[src].avail_up
        before_down = directory[dst].avail_down
        before_pair = network.pair_reserved(src, dst)
        if not network.reserve(src, dst, bw):
            assert directory[src].avail_up == before_up
            assert directory[dst].avail_down == before_down
            assert network.pair_reserved(src, dst) == before_pair
