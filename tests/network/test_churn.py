"""Unit tests for the churn (topological variation) process."""

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.network.churn import ChurnConfig, ChurnProcess
from repro.network.peer import PeerDirectory
from repro.sim import Simulator

NAMES = ("cpu", "memory")


def make(n=50, rate=10.0, bias=1.0, min_alive=2, seed=0):
    sim = Simulator()
    d = PeerDirectory(NAMES)
    for i in range(n):
        d.create_peer(ResourceVector(NAMES, [100, 100]), 1e6, joined_at=-float(i))
    departures = []

    def spawn(now):
        return d.create_peer(ResourceVector(NAMES, [100, 100]), 1e6, now)

    churn = ChurnProcess(
        sim,
        d,
        ChurnConfig(rate_per_min=rate, departure_bias=bias, min_alive=min_alive),
        spawn_peer=spawn,
        on_departure=departures.append,
        rng=np.random.default_rng(seed),
    )
    return sim, d, churn, departures


class TestChurnConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(rate_per_min=-1)

    def test_negative_bias_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(rate_per_min=1, departure_bias=-0.5)


class TestChurnProcess:
    def test_event_rate_matches_config(self):
        sim, d, churn, _ = make(n=200, rate=10.0)
        churn.start()
        sim.run(until=60.0)
        events = churn.n_arrivals + churn.n_departures
        # Poisson(10/min) over 60 min: ~600 +- wide slack.
        assert 400 < events < 800

    def test_population_roughly_stationary(self):
        sim, d, churn, _ = make(n=200, rate=20.0)
        churn.start()
        sim.run(until=60.0)
        assert 120 < d.n_alive < 280

    def test_zero_rate_is_noop(self):
        sim, d, churn, departures = make(rate=0.0)
        churn.start()
        sim.run(until=10.0)
        assert churn.n_arrivals == churn.n_departures == 0
        assert not departures

    def test_departure_callback_before_directory_update(self):
        sim, d, churn, departures = make(n=10, rate=0.0)
        seen_alive = []
        churn.on_departure = lambda pid: seen_alive.append(d.is_alive(pid))
        pid = churn.depart()
        assert pid is not None
        assert seen_alive == [True]  # callback ran while still alive
        assert not d.is_alive(pid)

    def test_min_alive_floor(self):
        sim, d, churn, _ = make(n=3, rate=0.0, min_alive=3)
        assert churn.depart() is None

    def test_departure_bias_prefers_young_peers(self):
        """With bias, young peers depart far more often than old ones."""
        rng = np.random.default_rng(0)
        young_departures = 0
        trials = 300
        for t in range(trials):
            sim, d, churn, _ = make(n=50, rate=0.0, bias=1.0, seed=t)
            # Peer i joined at -i: peer 0 is the youngest.
            pid = churn.pick_departing_peer()
            if d[pid].joined_at > -10:
                young_departures += 1
        # Uniform would give ~20%; the 1/(1+uptime) bias gives much more.
        assert young_departures / trials > 0.5

    def test_departure_bias_zero_is_uniform(self):
        counts = {}
        for t in range(300):
            sim, d, churn, _ = make(n=10, rate=0.0, bias=0.0, seed=t)
            pid = churn.pick_departing_peer()
            counts[pid] = counts.get(pid, 0) + 1
        # Every peer should be picked at least once over 300 draws.
        assert len(counts) == 10

    def test_arrival_assigns_current_join_time(self):
        sim, d, churn, _ = make(rate=0.0)
        sim.call_at(7.0, lambda: churn.arrive())
        sim.run(until=8.0)
        newest = max(d.alive_ids)
        assert d[newest].joined_at == 7.0

    def test_stop_halts_events(self):
        sim, d, churn, _ = make(n=100, rate=50.0)
        churn.start()
        sim.run(until=5.0)
        churn.stop()
        before = churn.n_arrivals + churn.n_departures
        sim.run(until=20.0)
        assert churn.n_arrivals + churn.n_departures == before
