"""Unit coverage for the struct-of-arrays peer store and directory.

The differential suite (tests/perf/test_soa_differential.py) proves the
SoA backend equals the object backend end to end; these tests pin the
store's own mechanics -- row recycling on departure/rejoin, generation
bumps, snapshot-epoch reset, free-list order, array growth -- at the
unit level, where a regression is attributable to one method.
"""

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.network.peer import Peer
from repro.network.soa import PeerRowView, PeerStore, SoAPeerDirectory

NAMES = ("cpu", "memory")


def rv(*values):
    return ResourceVector(NAMES, np.asarray(values, dtype=np.float64))


def make_directory(initial_rows=16):
    return SoAPeerDirectory(NAMES, initial_rows=initial_rows)


class TestPeerStoreRows:
    def test_alloc_appends_then_recycles_lifo(self):
        store = PeerStore(NAMES, initial_rows=16)
        r0, r1, r2 = store.alloc_row(), store.alloc_row(), store.alloc_row()
        assert (r0, r1, r2) == (0, 1, 2)
        store.free_row(r0)
        store.free_row(r2)
        # Free list is LIFO: the most recently freed row comes back first.
        assert store.alloc_row() == r2
        assert store.alloc_row() == r0
        assert store.rows_recycled == 2
        # Only fresh appends move the high-water mark.
        assert store.alloc_row() == 3

    def test_generation_bumps_on_alloc_and_free(self):
        store = PeerStore(NAMES, initial_rows=16)
        g0 = store.generation
        row = store.alloc_row()
        assert store.generation == g0 + 1
        store.free_row(row)
        assert store.generation == g0 + 2

    def test_free_resets_alive_and_snap_epoch(self):
        store = PeerStore(NAMES, initial_rows=16)
        row = store.alloc_row()
        store.init_row(row, np.array([4.0, 8.0]), 1e5, joined_at=0.0)
        store.snap_epoch[row] = 7  # pretend the prober snapshotted it
        store.free_row(row)
        assert not store.alive[row]
        # A recycled row must never serve the prior tenant's snapshot.
        assert store.snap_epoch[row] == -1

    def test_grow_preserves_state_and_fill_values(self):
        store = PeerStore(NAMES, initial_rows=16)
        cap = store.row_capacity
        for i in range(cap + 1):  # force one doubling
            row = store.alloc_row()
            store.init_row(row, np.array([1.0 + i, 2.0]), 1e5, joined_at=float(i))
        assert store.row_capacity >= 2 * cap
        assert store.capacity[0, 0] == 1.0
        assert store.joined_at[cap] == float(cap)
        # Fresh tail rows keep the sentinel fills.
        assert np.isnan(store.departed_at[cap + 1 :]).all()
        assert (store.snap_epoch[cap + 1 :] == -1).all()

    def test_memory_bytes_counts_every_array(self):
        store = PeerStore(NAMES, initial_rows=16)
        m = len(NAMES)
        expected = store.row_capacity * (
            3 * m * 8   # capacity, available, snap_avail matrices
            + 8 * 8     # the seven f8 vectors + snap_epoch (i8)
            + 1         # alive (bool)
        )
        assert store.memory_bytes() == expected


class TestDirectoryLifecycle:
    def test_create_returns_row_view_with_peer_surface(self):
        d = make_directory()
        p = d.create_peer(rv(4.0, 8.0), 1e5, joined_at=0.0)
        assert isinstance(p, PeerRowView)
        assert p.peer_id == 0
        assert p.alive and p.departed_at is None
        assert p.capacity.names == NAMES
        assert p.available.values.tolist() == [4.0, 8.0]
        assert p.uptime(5.0) == 5.0
        assert d.is_alive(0) and 0 in d and d[0] is p

    def test_depart_recycles_row_and_rejoin_reuses_it(self):
        d = make_directory()
        a = d.create_peer(rv(4.0, 8.0), 1e5, joined_at=0.0)
        b = d.create_peer(rv(2.0, 2.0), 1e5, joined_at=0.0)
        row_a = d.row_of(a.peer_id)
        d.depart(a.peer_id, now=3.0)
        assert d.row_of(a.peer_id) == -1
        assert not d.is_alive(a.peer_id)
        # The rejoining peer gets a fresh id but recycles a's row.
        c = d.create_peer(rv(9.0, 9.0), 2e5, joined_at=3.0)
        assert c.peer_id == 2
        assert d.row_of(c.peer_id) == row_a
        assert d.store.rows_recycled == 1
        # The recycled row carries only the new tenant's state.
        assert c.available.values.tolist() == [9.0, 9.0]
        assert c.joined_at == 3.0
        assert d.store.snap_epoch[row_a] == -1
        assert b.available.values.tolist() == [2.0, 2.0]

    def test_departed_peer_becomes_detached_tombstone(self):
        d = make_directory()
        p = d.create_peer(rv(4.0, 8.0), 1e5, joined_at=0.0)
        assert p.reserve(rv(1.0, 1.0))
        corpse = d.depart(p.peer_id, now=7.0)
        assert isinstance(corpse, Peer)
        assert corpse.departed_at == 7.0
        assert corpse.available.values.tolist() == [3.0, 7.0]
        # The directory still answers for the departed id ...
        assert d.get(p.peer_id) is corpse
        assert p.peer_id in d
        # ... and corpse mutations (rollback credits) never touch the
        # store: recycle the row and check the new tenant is unharmed.
        fresh = d.create_peer(rv(5.0, 5.0), 1e5, joined_at=8.0)
        corpse.release(rv(1.0, 1.0))
        assert fresh.available.values.tolist() == [5.0, 5.0]

    def test_depart_twice_and_unknown_raise(self):
        d = make_directory()
        p = d.create_peer(rv(1.0, 1.0), 1e5, joined_at=0.0)
        d.depart(p.peer_id, now=1.0)
        with pytest.raises(ValueError):
            d.depart(p.peer_id, now=2.0)
        with pytest.raises(KeyError):
            d.depart(99, now=2.0)

    def test_generation_tracks_membership_changes(self):
        d = make_directory()
        g0 = d.store.generation
        a = d.create_peer(rv(1.0, 1.0), 1e5, joined_at=0.0)
        d.create_peer(rv(1.0, 1.0), 1e5, joined_at=0.0)
        assert d.store.generation == g0 + 2
        d.depart(a.peer_id, now=1.0)
        assert d.store.generation == g0 + 3

    def test_alive_views_stay_aligned_under_churn(self):
        d = make_directory()
        peers = [d.create_peer(rv(1.0, 1.0), 1e5, joined_at=0.0)
                 for _ in range(5)]
        d.depart(peers[1].peer_id, now=1.0)
        d.depart(peers[3].peer_id, now=1.0)
        assert d.alive_ids == [0, 2, 4]
        assert d.n_alive == 3 and len(d) == 5
        rows = d.alive_rows()
        assert rows.tolist() == [d.row_of(pid) for pid in d.alive_ids]
        up, ids = d.uptimes(4.0)
        assert ids == [0, 2, 4] and up.tolist() == [4.0, 4.0, 4.0]

    def test_availability_matrix_covers_departed_ids(self):
        d = make_directory()
        a = d.create_peer(rv(4.0, 8.0), 1e5, joined_at=0.0)
        b = d.create_peer(rv(2.0, 2.0), 1e5, joined_at=0.0)
        assert a.reserve(rv(1.0, 1.0))
        d.depart(b.peer_id, now=1.0)
        mat = d.availability_matrix([a.peer_id, b.peer_id])
        assert mat.tolist() == [[3.0, 7.0], [2.0, 2.0]]

    def test_directory_grows_row_index_past_initial_rows(self):
        d = make_directory(initial_rows=16)
        for _ in range(40):
            d.create_peer(rv(1.0, 1.0), 1e5, joined_at=0.0)
        assert d.n_alive == 40
        assert d.row_of(39) >= 0

    def test_row_view_accounting_matches_object_peer(self):
        d = make_directory()
        p = d.create_peer(rv(4.0, 8.0), 1e5, joined_at=0.0)
        assert p.can_fit(rv(4.0, 8.0))
        assert p.reserve(rv(3.0, 3.0))
        assert not p.reserve(rv(2.0, 1.0))  # atomic: nothing deducted
        assert p.available.values.tolist() == [1.0, 5.0]
        p.release(rv(3.0, 3.0))
        with pytest.raises(ValueError):
            p.release(rv(1.0, 1.0))  # over capacity
        assert p.reserve_up(4e4) and p.reserve_down(2e4)
        assert p.avail_up == 6e4 and p.avail_down == 8e4
        p.release_up(9e5)  # clamped at access_bw
        assert p.avail_up == 1e5
