"""Unit tests for the discovery-plane caches.

Covers the :mod:`repro.lookup.cache` primitives (bounded LRU with
generation invalidation, plain-dict trimming) and the registry's
value-layer record cache: hit/miss accounting, the routed+cached
bookkeeping invariant, per-key generation invalidation, batched path
discovery dedupe and the fault-injector bypass.
"""

import numpy as np
import pytest

from repro.lookup.cache import BoundedCache, CacheStats, trim_mapping
from repro.lookup.chord import ChordRing
from repro.lookup.registry import ServiceRegistry
from repro.services.applications import default_applications
from repro.services.catalog import CatalogConfig, generate_catalog


class TestBoundedCache:
    def test_roundtrip(self):
        cache = BoundedCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert len(cache) == 1 and "a" in cache

    def test_cap_evicts_oldest(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_refreshes_lru_position(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")       # now "b" is the least recently used
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_put_existing_key_does_not_evict(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)   # overwrite, still 2 entries
        assert len(cache) == 2
        assert cache.get("a") == 10 and cache.get("b") == 2

    def test_generation_clears_wholesale(self):
        cache = BoundedCache(8)
        cache.check_generation(0)
        cache.put("a", 1)
        cache.check_generation(0)
        assert cache.get("a") == 1      # same generation: survives
        cache.check_generation(1)
        assert cache.get("a") is None   # bumped: gone
        assert len(cache) == 0

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedCache(0)

    def test_stats_are_caller_driven(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.get("a")
        assert cache.stats.total == 0   # get() itself never counts
        cache.stats.hits += 1
        assert cache.stats.hit_rate == 1.0


class TestCacheStats:
    def test_empty_rate(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict(self):
        s = CacheStats()
        s.hits, s.misses = 3, 1
        assert s.as_dict() == {"hits": 3, "misses": 1, "hit_rate": 0.75}


class TestTrimMapping:
    def test_noop_under_cap(self):
        d = {i: i for i in range(3)}
        assert trim_mapping(d, 5) == 0
        assert len(d) == 3

    def test_evicts_oldest_inserted(self):
        d = {i: i for i in range(6)}
        assert trim_mapping(d, 4) == 2
        assert list(d) == [2, 3, 4, 5]


@pytest.fixture()
def setup():
    rng = np.random.default_rng(0)
    apps = default_applications()[:3]
    peer_ids = list(range(150))
    catalog = generate_catalog(
        apps,
        peer_ids,
        rng,
        CatalogConfig(instances_per_service=(3, 5), replicas_per_instance=(4, 8)),
    )
    ring = ChordRing(bits=24, seed=1)
    for pid in peer_ids:
        ring.join(pid)
    registry = ServiceRegistry(ring, catalog)
    return apps, catalog, ring, registry


class TestRegistryRecordCache:
    def test_repeat_discovery_served_from_cache(self, setup):
        apps, _, ring, registry = setup
        service = apps[0].services[0]
        specs1, hops1 = registry.discover_service(service, from_peer=5)
        lookups_before = ring.n_lookups
        specs2, hops2 = registry.discover_service(service, from_peer=5)
        # Identical answer AND identical accounting -- the cached read
        # replays the routed walk's hop count and ring statistics.
        assert specs2 == specs1 and hops2 == hops1
        assert ring.n_lookups == lookups_before + 1
        assert registry.n_cached_discoveries == 1
        assert registry.record_cache_stats.hits == 1

    def test_accounting_invariant(self, setup):
        apps, catalog, _, registry = setup
        for app in apps:
            for service in app.services:
                registry.discover_service(service, from_peer=7)
                registry.discover_service(service, from_peer=7)
        for iid in list(catalog.instances)[:10]:
            registry.discover_hosts(iid, from_peer=3)
        assert (registry.n_routed_discoveries + registry.n_cached_discoveries
                == registry.n_discoveries)
        assert (registry.routed_discovery_hops + registry.cached_discovery_hops
                == registry.discovery_hops)
        assert 0.0 < registry.discovery_cache_hit_rate < 1.0

    def test_departure_invalidates_host_set(self, setup):
        _, catalog, _, registry = setup
        iid = next(iter(catalog.instances))
        hosts, _ = registry.discover_hosts(iid, from_peer=2)
        victim = next(iter(hosts))
        registry.discover_hosts(iid, from_peer=2)  # warm the cache
        registry.peer_departed(victim, [iid])
        after, _ = registry.discover_hosts(iid, from_peer=2)
        assert victim not in after
        assert after == hosts - {victim}

    def test_join_invalidates_host_set(self, setup):
        _, catalog, _, registry = setup
        iid = next(iter(catalog.instances))
        registry.discover_hosts(iid, from_peer=2)  # warm the cache
        newcomer = 10_000
        registry.peer_joined(newcomer, [iid])
        after, _ = registry.discover_hosts(iid, from_peer=2)
        assert newcomer in after

    def test_membership_change_invalidates_route_layer(self, setup):
        apps, _, ring, registry = setup
        service = apps[0].services[0]
        registry.discover_service(service, from_peer=5)
        ring.leave(60)  # unrelated membership event
        before = registry.n_cached_discoveries
        registry.discover_service(service, from_peer=5)
        # The ring generation moved, so the record cache may not answer.
        assert registry.n_cached_discoveries == before

    def test_injector_disables_cache(self, setup):
        _, _, _, registry = setup
        assert registry.cache_active
        registry.configure_faults(object(), object())
        assert not registry.cache_active

    def test_fast_paths_flag_disables_cache(self, setup):
        apps, _, _, registry = setup
        registry.fast_paths = False
        assert not registry.cache_active
        service = apps[0].services[0]
        registry.discover_service(service, from_peer=5)
        registry.discover_service(service, from_peer=5)
        assert registry.n_cached_discoveries == 0
        assert registry.record_cache_stats.total == 0

    def test_batched_path_discovery_dedupes_repeats(self, setup):
        apps, _, ring, registry = setup
        services = list(apps[1].services)
        path = services + [services[0]]  # one repeated abstract service
        lookups_before = ring.n_lookups
        candidates, total = registry.discover_path_candidates(path, from_peer=9)
        # Per-occurrence accounting: every element of the path counts one
        # discovery and one ring lookup, but only unique services route.
        assert registry.n_discoveries == len(path)
        assert ring.n_lookups - lookups_before == len(path)
        assert registry.n_routed_discoveries == len(set(path))
        assert registry.n_cached_discoveries == len(path) - len(set(path))
        assert set(candidates) == set(path)
        assert total == registry.discovery_hops
