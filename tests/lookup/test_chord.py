"""Unit tests for the Chord DHT."""

import math

import numpy as np
import pytest

from repro.lookup.chord import ChordRing


def ring_with(n, bits=16, seed=0):
    ring = ChordRing(bits=bits, seed=seed)
    for pid in range(n):
        ring.join(pid)
    return ring


class TestMembership:
    def test_join_and_contains(self):
        ring = ring_with(5)
        assert len(ring) == 5
        assert 3 in ring and 99 not in ring

    def test_double_join_rejected(self):
        ring = ring_with(2)
        with pytest.raises(ValueError):
            ring.join(0)

    def test_leave_unknown_rejected(self):
        ring = ring_with(2)
        with pytest.raises(KeyError):
            ring.leave(42)

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            ChordRing(bits=4)
        with pytest.raises(ValueError):
            ChordRing(bits=128)


class TestResponsibility:
    def test_put_get_roundtrip(self):
        ring = ring_with(20)
        ring.put("service:video", ("a", "b"))
        value, hops = ring.get("service:video", from_peer=7)
        assert value == ("a", "b")
        assert hops >= 0

    def test_get_missing_returns_none(self):
        ring = ring_with(5)
        value, _ = ring.get("nope", from_peer=0)
        assert value is None

    def test_responsible_node_is_successor_of_key(self):
        ring = ring_with(50)
        key = "some-key"
        node = ring.responsible_node(key)
        kid = ring.key_id(key)
        # No other node id lies in [key_id, node_id) going clockwise.
        for other_id in ring._ids:
            if other_id == node.node_id:
                continue
            if kid <= node.node_id:
                assert not (kid <= other_id < node.node_id)

    def test_update_read_modify_write(self):
        ring = ring_with(10)
        ring.put("hosts", frozenset({1}))
        ring.update("hosts", lambda h: frozenset(h | {2}))
        value, _ = ring.get("hosts", from_peer=0)
        assert value == frozenset({1, 2})

    def test_empty_ring_raises(self):
        ring = ChordRing(bits=16)
        with pytest.raises(RuntimeError):
            ring.responsible_node("k")
        with pytest.raises(RuntimeError):
            ring.lookup("k", from_peer=0)


class TestHandoff:
    def test_keys_survive_join(self):
        ring = ring_with(10)
        keys = [f"key-{i}" for i in range(200)]
        for k in keys:
            ring.put(k, k.upper())
        for pid in range(10, 60):
            ring.join(pid)
        for k in keys:
            value, _ = ring.get(k, from_peer=0)
            assert value == k.upper()

    def test_keys_survive_leave(self):
        ring = ring_with(60)
        keys = [f"key-{i}" for i in range(200)]
        for k in keys:
            ring.put(k, k.upper())
        for pid in range(40):
            ring.leave(pid)
        for k in keys:
            value, _ = ring.get(k, from_peer=50)
            assert value == k.upper()

    def test_keys_survive_mixed_churn(self):
        rng = np.random.default_rng(0)
        ring = ring_with(50)
        keys = [f"key-{i}" for i in range(100)]
        for k in keys:
            ring.put(k, 1)
        next_pid = 50
        members = set(range(50))
        for _ in range(200):
            if rng.random() < 0.5 and len(members) > 5:
                victim = int(rng.choice(sorted(members)))
                ring.leave(victim)
                members.discard(victim)
            else:
                ring.join(next_pid)
                members.add(next_pid)
                next_pid += 1
        for k in keys:
            value, _ = ring.get(k, from_peer=sorted(members)[0])
            assert value == 1

    def test_storage_roughly_balanced(self):
        ring = ring_with(64, bits=32)
        for i in range(6400):
            ring.put(f"key-{i}", i)
        sizes = [len(n.store) for n in ring._nodes.values()]
        assert sum(sizes) == 6400
        # Consistent hashing balance: max node holds O(log n / n) share.
        assert max(sizes) < 6400 * 0.15


class TestRouting:
    def test_lookup_from_nonmember_bootstraps(self):
        ring = ring_with(10)
        ring.put("k", "v")
        value, hops = ring.get("k", from_peer=12345)
        assert value == "v"

    def test_hops_zero_when_start_is_responsible(self):
        ring = ring_with(10)
        ring.put("k", "v")
        owner = ring.responsible_node("k").peer_id
        _, hops = ring.get("k", from_peer=owner)
        assert hops == 0

    def test_hop_count_logarithmic(self):
        """Mean lookup hops grow like O(log2 N) (<= ~1.5 log2 N slack)."""
        rng = np.random.default_rng(1)
        for n in (32, 128, 512):
            ring = ring_with(n, bits=32, seed=2)
            keys = [f"key-{i}" for i in range(100)]
            for k in keys:
                ring.put(k, 1)
            hops = []
            for k in keys:
                start = int(rng.integers(n))
                _, h = ring.get(k, from_peer=start)
                hops.append(h)
            mean = np.mean(hops)
            assert mean <= 1.5 * math.log2(n), (n, mean)

    def test_lookup_statistics_accumulate(self):
        ring = ring_with(16)
        ring.put("k", 1)
        before = ring.n_lookups
        ring.get("k", from_peer=3)
        assert ring.n_lookups == before + 1
        assert ring.mean_hops >= 0.0

    def test_single_node_ring(self):
        ring = ring_with(1)
        ring.put("k", "v")
        value, hops = ring.get("k", from_peer=0)
        assert value == "v"
        assert hops == 0
