"""Unit tests for the CAN DHT."""

import numpy as np
import pytest

from repro.lookup.can import CanNetwork, Zone


def can_with(n, d=2, seed=0):
    net = CanNetwork(dimensions=d, seed=seed)
    for pid in range(n):
        net.join(pid)
    return net


class TestZone:
    def test_validation(self):
        with pytest.raises(ValueError):
            Zone(np.array([0.5]), np.array([0.5]))

    def test_volume_and_center(self):
        z = Zone(np.array([0.0, 0.0]), np.array([0.5, 1.0]))
        assert z.volume == 0.5
        assert list(z.center) == [0.25, 0.5]

    def test_contains_half_open(self):
        z = Zone(np.array([0.0]), np.array([0.5]))
        assert z.contains(np.array([0.0]))
        assert z.contains(np.array([0.49]))
        assert not z.contains(np.array([0.5]))

    def test_split_halves_longest_dim(self):
        z = Zone(np.array([0.0, 0.0]), np.array([1.0, 0.5]))
        a, b = z.split()
        assert a.hi[0] == 0.5 and b.lo[0] == 0.5  # split along dim 0
        assert np.isclose(a.volume + b.volume, z.volume)

    def test_distance_zero_inside(self):
        z = Zone(np.array([0.2, 0.2]), np.array([0.4, 0.4]))
        assert z.distance_to(np.array([0.3, 0.3])) == 0.0

    def test_distance_wraps_on_torus(self):
        z = Zone(np.array([0.0, 0.0]), np.array([0.1, 1.0]))
        # Point at x=0.95: direct gap 0.85, torus gap 0.05 (wrapping).
        d = z.distance_to(np.array([0.95, 0.5]))
        assert d == pytest.approx(0.05)

    def test_adjacent_shared_face(self):
        a = Zone(np.array([0.0, 0.0]), np.array([0.5, 1.0]))
        b = Zone(np.array([0.5, 0.0]), np.array([1.0, 1.0]))
        assert a.adjacent(b)

    def test_adjacent_wraparound(self):
        a = Zone(np.array([0.0, 0.0]), np.array([0.25, 1.0]))
        b = Zone(np.array([0.75, 0.0]), np.array([1.0, 1.0]))
        assert a.adjacent(b)  # across the x-wrap

    def test_corner_touch_not_adjacent(self):
        a = Zone(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = Zone(np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        assert not a.adjacent(b)

    def test_disjoint_not_adjacent(self):
        a = Zone(np.array([0.0, 0.0]), np.array([0.25, 0.25]))
        b = Zone(np.array([0.5, 0.5]), np.array([0.75, 0.75]))
        assert not a.adjacent(b)


class TestMembership:
    def test_first_node_owns_everything(self):
        net = can_with(1)
        assert net.total_volume() == pytest.approx(1.0)

    def test_volume_conserved_under_joins(self):
        net = can_with(64)
        assert net.total_volume() == pytest.approx(1.0)

    def test_volume_conserved_under_mixed_churn(self):
        net = can_with(40)
        rng = np.random.default_rng(0)
        members = set(range(40))
        next_pid = 40
        for _ in range(120):
            if rng.random() < 0.5 and len(members) > 2:
                victim = int(rng.choice(sorted(members)))
                net.leave(victim)
                members.discard(victim)
            else:
                net.join(next_pid)
                members.add(next_pid)
                next_pid += 1
            assert net.total_volume() == pytest.approx(1.0)

    def test_double_join_rejected(self):
        net = can_with(3)
        with pytest.raises(ValueError):
            net.join(0)

    def test_unknown_leave_rejected(self):
        net = can_with(3)
        with pytest.raises(KeyError):
            net.leave(99)

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            CanNetwork(dimensions=0)

    def test_neighbors_symmetric(self):
        net = can_with(50)
        for node in net._nodes.values():
            for nb in node.neighbors:
                assert node.peer_id in net._nodes[nb].neighbors


class TestStorageAndRouting:
    def test_put_get_roundtrip(self):
        net = can_with(30)
        net.put("service:video", ("a", "b"))
        value, hops = net.get("service:video", from_peer=7)
        assert value == ("a", "b")
        assert hops >= 0

    def test_get_missing_none(self):
        net = can_with(10)
        value, _ = net.get("nope", from_peer=0)
        assert value is None

    def test_update(self):
        net = can_with(10)
        net.put("hosts", frozenset({1}))
        net.update("hosts", lambda h: frozenset(h | {2}))
        value, _ = net.get("hosts", from_peer=3)
        assert value == frozenset({1, 2})

    def test_keys_survive_join_churn(self):
        net = can_with(10)
        keys = [f"key-{i}" for i in range(100)]
        for k in keys:
            net.put(k, k.upper())
        for pid in range(10, 50):
            net.join(pid)
        for k in keys:
            value, _ = net.get(k, from_peer=25)
            assert value == k.upper()

    def test_keys_survive_leave_churn(self):
        net = can_with(50)
        keys = [f"key-{i}" for i in range(100)]
        for k in keys:
            net.put(k, 1)
        for pid in range(30):
            net.leave(pid)
        for k in keys:
            value, _ = net.get(k, from_peer=40)
            assert value == 1

    def test_lookup_from_nonmember_bootstraps(self):
        net = can_with(10)
        net.put("k", "v")
        value, hops = net.get("k", from_peer=12345)
        assert value == "v"
        assert hops >= 1

    def test_hops_scale_sublinearly(self):
        """Mean hops ~ O(d N^(1/d)): far below N even for modest N."""
        rng = np.random.default_rng(1)
        for n in (16, 64, 256):
            net = can_with(n, d=2, seed=2)
            for i in range(50):
                net.put(f"key-{i}", 1)
            hops = []
            for i in range(50):
                _, h = net.get(f"key-{i}", from_peer=int(rng.integers(n)))
                hops.append(h)
            mean = np.mean(hops)
            # CAN bound with d=2: ~ (d/2) * N^(1/2); allow 3x slack.
            assert mean <= 3.0 * np.sqrt(n), (n, mean)

    def test_empty_can_raises(self):
        net = CanNetwork()
        with pytest.raises(RuntimeError):
            net.lookup("k", from_peer=0)

    def test_statistics(self):
        net = can_with(8)
        net.put("k", 1)
        net.get("k", from_peer=2)
        assert net.n_lookups == 1
        assert net.mean_hops >= 0.0
