"""Unit tests for the Gnutella-style flooding overlay."""

import numpy as np
import pytest

from repro.lookup.flooding import FloodingOverlay


def overlay(n=100, degree=4, seed=0):
    return FloodingOverlay(range(n), degree, np.random.default_rng(seed))


class TestConstruction:
    def test_every_peer_has_neighbors(self):
        ov = overlay()
        assert all(len(nbrs) >= 1 for nbrs in ov.adj.values())

    def test_edges_undirected(self):
        ov = overlay()
        for pid, nbrs in ov.adj.items():
            for nb in nbrs:
                assert pid in ov.adj[nb]

    def test_no_self_loops(self):
        ov = overlay()
        for pid, nbrs in ov.adj.items():
            assert pid not in nbrs

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            FloodingOverlay(range(10), 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            FloodingOverlay([1], 2, np.random.default_rng(0))


class TestMembership:
    def test_add_peer_wires_links(self):
        ov = overlay(n=20)
        ov.add_peer(99, np.random.default_rng(1))
        assert len(ov.adj[99]) >= 1
        for nb in ov.adj[99]:
            assert 99 in ov.adj[nb]

    def test_add_existing_rejected(self):
        ov = overlay(n=10)
        with pytest.raises(ValueError):
            ov.add_peer(3, np.random.default_rng(0))

    def test_remove_peer_cleans_edges(self):
        ov = overlay(n=20)
        neighbors = list(ov.adj[5])
        ov.remove_peer(5)
        assert 5 not in ov.adj
        for nb in neighbors:
            assert 5 not in ov.adj[nb]


class TestFlood:
    def test_finds_record_within_ttl(self):
        ov = overlay(n=200, degree=6, seed=3)
        holders = {7, 42, 130}
        result = ov.flood(0, lambda p: p in holders, ttl=10)
        assert set(result.found) & holders

    def test_zero_ttl_checks_only_start(self):
        ov = overlay(n=50)
        result = ov.flood(3, lambda p: p == 3, ttl=0)
        assert result.found == (3,)
        assert result.messages == 0

    def test_messages_grow_with_ttl(self):
        ov = overlay(n=500, degree=5, seed=1)
        m1 = ov.flood(0, lambda p: False, ttl=2).messages
        m2 = ov.flood(0, lambda p: False, ttl=5).messages
        assert m2 > m1

    def test_flooding_costs_more_messages_than_chord_hops(self):
        """The motivating comparison: flooding sprays O(N) messages."""
        ov = overlay(n=500, degree=5, seed=2)
        result = ov.flood(0, lambda p: False, ttl=7)
        assert result.messages > 500  # visits most of the network

    def test_stop_at_limits_spread(self):
        ov = overlay(n=500, degree=5, seed=4)
        holders = set(range(0, 500, 10))
        full = ov.flood(1, lambda p: p in holders, ttl=7)
        bounded = ov.flood(1, lambda p: p in holders, ttl=7, stop_at=3)
        assert bounded.messages <= full.messages
        assert len(bounded.found) >= 3

    def test_unknown_start_rejected(self):
        ov = overlay(n=10)
        with pytest.raises(KeyError):
            ov.flood(999, lambda p: False, ttl=2)
