"""Unit tests for the Chord-backed service registry."""

import numpy as np
import pytest

from repro.lookup.chord import ChordRing
from repro.lookup.registry import ServiceRegistry
from repro.services.applications import default_applications
from repro.services.catalog import CatalogConfig, generate_catalog


@pytest.fixture()
def setup():
    rng = np.random.default_rng(0)
    apps = default_applications()[:3]
    peer_ids = list(range(200))
    catalog = generate_catalog(
        apps,
        peer_ids,
        rng,
        CatalogConfig(instances_per_service=(4, 6), replicas_per_instance=(5, 10)),
    )
    ring = ChordRing(bits=24, seed=1)
    for pid in peer_ids:
        ring.join(pid)
    registry = ServiceRegistry(ring, catalog)
    return apps, catalog, ring, registry


class TestDiscovery:
    def test_discover_service_returns_all_instances(self, setup):
        apps, catalog, ring, registry = setup
        service = apps[0].services[0]
        specs, hops = registry.discover_service(service, from_peer=5)
        assert {s.instance_id for s in specs} == {
            s.instance_id for s in catalog.candidates(service)
        }
        assert hops >= 0

    def test_discover_unknown_service_empty(self, setup):
        _, _, _, registry = setup
        specs, _ = registry.discover_service("no-such-service", from_peer=0)
        assert specs == ()

    def test_discover_hosts_matches_catalog(self, setup):
        apps, catalog, _, registry = setup
        iid = next(iter(catalog.instances))
        hosts, _ = registry.discover_hosts(iid, from_peer=3)
        assert hosts == frozenset(catalog.hosts(iid))

    def test_discover_path_accumulates_hops(self, setup):
        apps, _, _, registry = setup
        services = apps[1].services
        candidates, hops = registry.discover_path_candidates(services, from_peer=9)
        assert set(candidates) == set(services)
        assert hops >= 0
        assert registry.n_discoveries >= len(services)

    def test_mean_discovery_hops(self, setup):
        _, catalog, _, registry = setup
        assert registry.mean_discovery_hops == 0.0
        iid = next(iter(catalog.instances))
        registry.discover_hosts(iid, from_peer=1)
        assert registry.mean_discovery_hops >= 0.0


class TestChurnMaintenance:
    def test_departed_peer_removed_from_host_records(self, setup):
        apps, catalog, ring, registry = setup
        # Find a peer hosting something.
        pid = next(iter(catalog.hosted_by))
        hosted = set(catalog.hosted_instances(pid))
        assert hosted
        registry.peer_departed(pid, hosted)
        for iid in hosted:
            hosts, _ = registry.discover_hosts(iid, from_peer=0)
            assert pid not in hosts
        assert pid not in ring

    def test_joined_peer_added_to_host_records(self, setup):
        apps, catalog, ring, registry = setup
        new_pid = 10_000
        some_iids = list(catalog.instances)[:3]
        registry.peer_joined(new_pid, some_iids)
        assert new_pid in ring
        for iid in some_iids:
            hosts, _ = registry.discover_hosts(iid, from_peer=0)
            assert new_pid in hosts

    def test_records_survive_heavy_ring_churn(self, setup):
        apps, catalog, ring, registry = setup
        service = apps[0].services[0]
        before, _ = registry.discover_service(service, from_peer=150)
        # Cycle half of the membership (peers without replicas for
        # simplicity: use ids above the catalog population).
        for pid in range(0, 80):
            hosted = set(catalog.hosted_instances(pid))
            catalog.remove_peer(pid)
            registry.peer_departed(pid, hosted)
        after, _ = registry.discover_service(service, from_peer=150)
        assert {s.instance_id for s in after} == {s.instance_id for s in before}
