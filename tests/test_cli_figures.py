"""CLI figure commands end-to-end (tiny scale), including --plot."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)


class TestFigureCommands:
    def test_figure5_with_plot(self, capsys):
        assert main([
            "figure5", "--rates", "30", "60", "--horizon", "2", "--plot",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "└" in out          # chart frame
        assert "* qsa" in out      # legend

    def test_figure6_with_plot(self, capsys):
        assert main([
            "figure6", "--rate", "30", "--horizon", "4", "--plot",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "overall" in out
        assert "time (min)" in out

    def test_figure7_seed_option(self, capsys):
        assert main([
            "figure7", "--churn-rates", "0", "--rate", "20",
            "--horizon", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_figure8_with_plot(self, capsys):
        assert main([
            "figure8", "--rate", "20", "--churn", "30",
            "--horizon", "4", "--plot",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "└" in out
