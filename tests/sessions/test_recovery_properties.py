"""Property test: recovery keeps the books balanced under any kill order.

Random interleavings of request arrivals, time advances and peer
departures run against a recovery-enabled grid; after every event the
resource/bandwidth invariants must hold, and after draining, everything
must be released.  This is the recovery analogue of
``test_conservation.py`` (which covers the no-recovery ledger).
"""

import pytest

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.grid import GridConfig, P2PGrid
from repro.sessions.recovery import RecoveryConfig

events = st.lists(
    st.sampled_from(["request", "advance", "kill", "kill", "request"]),
    min_size=5,
    max_size=35,
)


def check_invariants(grid):
    for peer in grid.directory.alive_peers():
        assert np.all(peer.available.values >= -1e-6)
        assert np.all(peer.available.values <= peer.capacity.values + 1e-6)
        assert -1e-6 <= peer.avail_up <= peer.access_bw + 1e-6
        assert -1e-6 <= peer.avail_down <= peer.access_bw + 1e-6
    for session in grid.ledger.active_sessions():
        for pid in session.peers:
            assert grid.directory.is_alive(pid), (
                f"active session {session.session_id} on dead peer {pid}"
            )


@pytest.mark.slow
@settings(max_examples=15, deadline=None)
@given(events, st.integers(0, 10_000))
def test_recovery_conserves_under_random_schedules(schedule, seed):
    grid = P2PGrid(GridConfig(
        n_peers=120,
        seed=seed % 50,
        recovery=RecoveryConfig(max_attempts=2),
    ))
    agg = grid.make_aggregator("qsa")
    rng = np.random.default_rng(seed)
    apps = [a.name for a in grid.applications]

    for op in schedule:
        if op == "request":
            app = apps[int(rng.integers(len(apps)))]
            agg.aggregate(grid.make_request(
                app,
                qos_level=("low", "average", "high")[int(rng.integers(3))],
                duration=float(rng.uniform(0.5, 8.0)),
            ))
        elif op == "advance":
            grid.sim.run(until=grid.sim.now + float(rng.uniform(0.2, 2.0)))
        else:  # kill: departure through the full grid path
            alive = grid.directory.alive_ids
            if len(alive) <= 10:
                continue
            victim = alive[int(rng.integers(len(alive)))]
            grid._on_peer_departure(victim)
            grid.directory.depart(victim, grid.sim.now)
        check_invariants(grid)

    grid.sim.run()
    assert grid.ledger.n_active == 0
    assert grid.network.n_reserved_pairs == 0
    for peer in grid.directory.alive_peers():
        assert np.allclose(peer.available.values, peer.capacity.values,
                           atol=1e-6)
        assert np.isclose(peer.avail_up, peer.access_bw)
        assert np.isclose(peer.avail_down, peer.access_bw)
