"""Unit tests for atomic multi-peer admission."""

import pytest

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance
from repro.sessions.admission import AdmissionError, reserve_session

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def inst(iid, cpu=10.0, mem=10.0, bw=100.0):
    return ServiceInstance(
        iid, iid.split("/")[0], QoSVector(), QoSVector(), rv(cpu, mem), bw
    )


def make_grid(n=5, capacity=100.0, access=1e6):
    d = PeerDirectory(NAMES)
    for _ in range(n):
        d.create_peer(rv(capacity, capacity), access, 0.0)
    return d, NetworkModel(d, seed=0)


class TestReserveSession:
    def test_successful_reservation_holds_everything(self):
        d, net = make_grid()
        instances = [inst("a/0", cpu=30, bw=100), inst("b/0", cpu=40, bw=200)]
        reserve_session(d, net, instances, peers=[1, 2], user_peer=0)
        assert list(d[1].available.values) == [70.0, 90.0]
        assert list(d[2].available.values) == [60.0, 90.0]
        # Edges: 1 -> 2 at 100 bps, 2 -> 0 (user) at 200 bps.
        assert net.pair_reserved(1, 2) == 100.0
        assert net.pair_reserved(2, 0) == 200.0

    def test_mismatched_lengths_rejected(self):
        d, net = make_grid()
        with pytest.raises(ValueError):
            reserve_session(d, net, [inst("a/0")], peers=[1, 2], user_peer=0)

    def test_resource_shortage_rolls_back(self):
        d, net = make_grid(capacity=50.0)
        instances = [inst("a/0", cpu=30), inst("b/0", cpu=60)]  # b won't fit
        with pytest.raises(AdmissionError) as err:
            reserve_session(d, net, instances, peers=[1, 2], user_peer=0)
        assert err.value.stage == "resources"
        # Everything rolled back.
        assert list(d[1].available.values) == [50.0, 50.0]
        assert list(d[2].available.values) == [50.0, 50.0]
        assert net.n_reserved_pairs == 0

    def test_bandwidth_shortage_rolls_back(self):
        d, net = make_grid(access=150.0)
        instances = [inst("a/0", bw=100), inst("b/0", bw=100)]
        # Peer 2's uplink (150) fits one 100 bps flow; but peer 2 must
        # carry b/0 -> user while 1 -> 2 consumes its downlink: fine.
        # Make it fail by exceeding the user's downlink.
        instances = [inst("a/0", bw=100), inst("b/0", bw=200)]
        with pytest.raises(AdmissionError) as err:
            reserve_session(d, net, instances, peers=[1, 2], user_peer=0)
        assert err.value.stage == "bandwidth"
        assert list(d[1].available.values) == [100.0, 100.0]
        assert d[1].avail_up == 150.0
        assert d[2].avail_down == 150.0
        assert net.n_reserved_pairs == 0

    def test_dead_peer_rejected(self):
        d, net = make_grid()
        d.depart(2, 0.0)
        with pytest.raises(AdmissionError):
            reserve_session(d, net, [inst("a/0")], peers=[2], user_peer=0)

    def test_same_peer_twice_accumulates(self):
        d, net = make_grid(capacity=100.0)
        instances = [inst("a/0", cpu=40), inst("b/0", cpu=40)]
        reserve_session(d, net, instances, peers=[1, 1], user_peer=0)
        assert list(d[1].available.values) == [20.0, 80.0]

    def test_same_peer_twice_over_capacity_rolls_back(self):
        d, net = make_grid(capacity=100.0)
        instances = [inst("a/0", cpu=60), inst("b/0", cpu=60)]
        with pytest.raises(AdmissionError):
            reserve_session(d, net, instances, peers=[1, 1], user_peer=0)
        assert list(d[1].available.values) == [100.0, 100.0]

    def test_single_hop_to_self_needs_no_bandwidth(self):
        """The user hosting its own service instance: no network edge."""
        d, net = make_grid()
        reserve_session(d, net, [inst("a/0", bw=500)], peers=[0], user_peer=0)
        assert net.n_reserved_pairs == 0
