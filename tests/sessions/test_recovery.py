"""Unit/integration tests for runtime failure detection and recovery."""

import numpy as np
import pytest

from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig
from repro.sessions.recovery import RecoveryConfig
from repro.sessions.session import SessionState


def make_grid(recovery=None, n_peers=300, seed=5):
    return P2PGrid(GridConfig(n_peers=n_peers, seed=seed, recovery=recovery))


def admit_session(grid, duration=50.0, app="video-on-demand", tries=20):
    agg = grid.make_aggregator("qsa")
    for _ in range(tries):
        req = grid.make_request(app, qos_level="average", duration=duration)
        res = agg.aggregate(req)
        if res.admitted:
            return res
    raise AssertionError("no admissible request")


def kill_peer(grid, pid):
    grid._on_peer_departure(pid)
    grid.directory.depart(pid, grid.sim.now)


class TestRecoveryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryConfig(detection_delay=-1.0)
        with pytest.raises(ValueError):
            RecoveryConfig(max_attempts=0)

    def test_grid_without_recovery_has_none(self):
        assert make_grid().recovery is None

    def test_grid_with_recovery_wired(self):
        g = make_grid(recovery=RecoveryConfig())
        assert g.recovery is not None


class TestRepair:
    def test_session_survives_single_departure(self):
        g = make_grid(recovery=RecoveryConfig())
        res = admit_session(g)
        victim = res.peers[0]
        kill_peer(g, victim)
        session = res.session
        assert session.state is SessionState.ACTIVE
        assert victim not in session.peers
        assert g.recovery.n_repairs == 1
        # Replacement hosts the same instance.
        replacement = session.peers[0]
        assert replacement in g.catalog.hosts(session.instances[0].instance_id)
        # The session still completes and the books balance.
        g.sim.run()
        assert session.state is SessionState.COMPLETED
        assert g.network.n_reserved_pairs == 0

    def test_user_peer_departure_is_fatal(self):
        g = make_grid(recovery=RecoveryConfig())
        res = admit_session(g)
        kill_peer(g, res.session.user_peer)
        assert res.session.state is SessionState.FAILED

    def test_repaired_session_indexed_under_new_peer(self):
        g = make_grid(recovery=RecoveryConfig())
        res = admit_session(g)
        victim = res.peers[-1]
        kill_peer(g, victim)
        session = res.session
        if session.state is SessionState.ACTIVE:  # repaired
            new_peer = session.peers[-1]
            assert session.session_id in g.ledger.sessions_on_peer(new_peer)
            assert session.session_id not in g.ledger.sessions_on_peer(victim)

    def test_attempt_budget_exhausts(self):
        g = make_grid(recovery=RecoveryConfig(max_attempts=1))
        res = admit_session(g)
        session = res.session
        kill_peer(g, session.peers[0])
        assert g.recovery.n_repairs <= 1
        if session.state is SessionState.ACTIVE:
            kill_peer(g, session.peers[0])
            assert session.state is SessionState.FAILED

    def test_detection_delay_defers_repair(self):
        g = make_grid(recovery=RecoveryConfig(detection_delay=2.0))
        res = admit_session(g, duration=30.0)
        session = res.session
        victim = session.peers[0]
        kill_peer(g, victim)
        # Not yet repaired: the repair event sits in the future.
        assert victim in session.peers
        g.sim.run(until=g.sim.now + 3.0)
        assert session.state in (SessionState.ACTIVE, SessionState.FAILED)
        if session.state is SessionState.ACTIVE:
            assert victim not in session.peers

    def test_second_departure_in_window_is_fatal(self):
        g = make_grid(recovery=RecoveryConfig(detection_delay=2.0))
        res = admit_session(g, app="medical-imaging", duration=30.0)
        session = res.session
        first, second = session.peers[0], session.peers[1]
        if first == second:
            pytest.skip("same peer selected twice")
        kill_peer(g, first)
        kill_peer(g, second)
        g.sim.run(until=g.sim.now + 3.0)
        assert session.state is SessionState.FAILED

    def test_disabled_config_falls_back_to_failure(self):
        g = make_grid(recovery=RecoveryConfig(enabled=False))
        # Grid treats disabled the same as absent.
        assert g.recovery is None


class TestConservationUnderRecovery:
    def test_books_balance_after_churny_run(self):
        g = P2PGrid(GridConfig(
            n_peers=200,
            seed=3,
            churn=ChurnConfig(rate_per_min=8.0),
            recovery=RecoveryConfig(),
        ))
        agg = g.make_aggregator("qsa")

        def tick():
            req = g.make_request("video-on-demand", duration=5.0)
            agg.aggregate(req)

        for t in range(30):
            g.sim.call_at(float(t), tick)
        g.sim.run(until=30.0)
        g.churn.stop()
        g.sim.run()
        assert g.ledger.n_active == 0
        assert g.network.n_reserved_pairs == 0
        for peer in g.directory.alive_peers():
            assert np.all(
                peer.available.values <= peer.capacity.values + 1e-9
            )
            assert np.allclose(peer.available.values, peer.capacity.values)
            assert peer.avail_up == pytest.approx(peer.access_bw)
            assert peer.avail_down == pytest.approx(peer.access_bw)

    @pytest.mark.slow
    def test_recovery_improves_psi_under_churn(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment
        from repro.workload.generator import WorkloadConfig

        def run(recovery):
            cfg = ExperimentConfig(
                grid=GridConfig(
                    n_peers=300, seed=4,
                    churn=ChurnConfig(rate_per_min=10.0),
                    recovery=recovery,
                ),
                workload=WorkloadConfig(rate_per_min=10.0, horizon=20.0),
            )
            return run_experiment(cfg.with_algorithm("qsa")).success_ratio

        assert run(RecoveryConfig()) > run(None)
