"""Idempotent session teardown: holds are released exactly once.

The serving plane's ``DELETE /sessions/{id}`` introduced a second
teardown path that can race the scheduled completion (and recovery);
these tests pin the contract: ``release_session`` rolls everything back,
repeated teardowns are no-ops, and no path ever double-credits the
resource or bandwidth books.
"""

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance
from repro.sessions.session import SessionLedger, SessionState
from repro.sim import Simulator

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def inst(iid, cpu=10.0, mem=10.0, bw=100.0):
    return ServiceInstance(
        iid, iid.split("/")[0], QoSVector(), QoSVector(), rv(cpu, mem), bw
    )


def make(n=5, capacity=100.0):
    sim = Simulator()
    d = PeerDirectory(NAMES)
    for _ in range(n):
        d.create_peer(rv(capacity, capacity), 1e6, 0.0)
    net = NetworkModel(d, seed=0)
    outcomes = []
    ledger = SessionLedger(sim, d, net, on_outcome=outcomes.append)
    return sim, d, net, ledger, outcomes


class TestReleaseSession:
    def test_release_rolls_back_everything(self):
        sim, d, net, ledger, outcomes = make()
        s = ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=10.0)
        released = ledger.release_session(s.session_id)
        assert released is s
        assert s.state is SessionState.COMPLETED
        assert s.failure_reason == "client-release"
        assert ledger.n_active == 0
        assert ledger.n_completed == 1
        assert ledger.n_released == 1
        assert list(d[1].available.values) == [100.0, 100.0]
        assert net.n_reserved_pairs == 0
        assert [o.session_id for o in outcomes] == [s.session_id]

    def test_release_unknown_session_returns_none(self):
        sim, d, net, ledger, _ = make()
        assert ledger.release_session(42) is None
        assert ledger.n_released == 0

    def test_second_release_is_noop(self):
        sim, d, net, ledger, outcomes = make()
        s = ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=10.0)
        assert ledger.release_session(s.session_id) is s
        assert ledger.release_session(s.session_id) is None
        assert ledger.n_released == 1
        assert ledger.n_completed == 1
        assert list(d[1].available.values) == [100.0, 100.0]
        assert len(outcomes) == 1

    def test_scheduled_completion_after_release_is_noop(self):
        # DELETE racing the completion timer: the timer must find the
        # session gone and credit nothing a second time.
        sim, d, net, ledger, outcomes = make()
        s = ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=10.0)
        ledger.release_session(s.session_id)
        sim.run(until=11.0)  # the scheduled _complete fires here
        assert ledger.n_completed == 1
        assert ledger.n_released == 1
        assert list(d[1].available.values) == [100.0, 100.0]
        assert len(outcomes) == 1

    def test_release_after_failure_is_noop(self):
        sim, d, net, ledger, outcomes = make()
        s = ledger.admit(1, 0, [inst("a/0"), inst("b/0")], [1, 2], 10.0)
        ledger.fail_peer(2)
        assert ledger.release_session(s.session_id) is None
        assert ledger.n_failed == 1
        assert ledger.n_released == 0
        assert len(outcomes) == 1


class TestReleaseLatch:
    def test_internal_double_release_credits_once(self):
        # Even calling the internal rollback twice must not double-credit
        # (the `released` latch, not caller discipline, is the guarantee).
        sim, d, net, ledger, _ = make()
        s = ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=10.0)
        assert not s.released
        ledger._release(s)
        assert s.released
        before = list(d[1].available.values)
        ledger._release(s)
        assert list(d[1].available.values) == before == [100.0, 100.0]

    def test_concurrent_sessions_unaffected_by_release(self):
        sim, d, net, ledger, _ = make()
        a = ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=10.0)
        ledger.admit(2, 0, [inst("b/0", cpu=20)], [1], duration=10.0)
        ledger.release_session(a.session_id)
        # Only a's holds came back; b still holds 20 cpu / 10 mem.
        assert list(d[1].available.values) == [80.0, 90.0]
        sim.run(until=11.0)
        assert list(d[1].available.values) == [100.0, 100.0]
        assert ledger.n_completed == 2
