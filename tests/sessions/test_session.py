"""Unit tests for the session ledger lifecycle."""

import pytest

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance
from repro.sessions.admission import AdmissionError
from repro.sessions.session import SessionLedger, SessionState
from repro.sim import Simulator

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


def inst(iid, cpu=10.0, mem=10.0, bw=100.0):
    return ServiceInstance(
        iid, iid.split("/")[0], QoSVector(), QoSVector(), rv(cpu, mem), bw
    )


def make(n=5, capacity=100.0):
    sim = Simulator()
    d = PeerDirectory(NAMES)
    for _ in range(n):
        d.create_peer(rv(capacity, capacity), 1e6, 0.0)
    net = NetworkModel(d, seed=0)
    outcomes = []
    ledger = SessionLedger(sim, d, net, on_outcome=outcomes.append)
    return sim, d, net, ledger, outcomes


class TestAdmit:
    def test_admit_creates_active_session(self):
        sim, d, net, ledger, _ = make()
        s = ledger.admit(1, 0, [inst("a/0"), inst("b/0")], [1, 2], duration=10.0)
        assert s.state is SessionState.ACTIVE
        assert ledger.n_active == 1
        assert s.participants == {1, 2}
        assert s.end == 10.0

    def test_admit_shortage_raises_and_leaves_nothing(self):
        sim, d, net, ledger, _ = make(capacity=5.0)
        with pytest.raises(AdmissionError):
            ledger.admit(1, 0, [inst("a/0", cpu=10)], [1], duration=10.0)
        assert ledger.n_active == 0
        assert list(d[1].available.values) == [5.0, 5.0]

    def test_connections_chain_to_user(self):
        sim, d, net, ledger, _ = make()
        s = ledger.admit(
            1, 0, [inst("a/0", bw=10), inst("b/0", bw=20)], [3, 4], 5.0
        )
        assert s.connections() == [(3, 4, 10.0), (4, 0, 20.0)]


class TestCompletion:
    def test_completion_releases_and_reports(self):
        sim, d, net, ledger, outcomes = make()
        ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=10.0)
        sim.run(until=11.0)
        assert ledger.n_active == 0
        assert ledger.n_completed == 1
        assert list(d[1].available.values) == [100.0, 100.0]
        assert net.n_reserved_pairs == 0
        assert len(outcomes) == 1
        assert outcomes[0].state is SessionState.COMPLETED

    def test_concurrent_sessions_independent(self):
        sim, d, net, ledger, outcomes = make()
        ledger.admit(1, 0, [inst("a/0", cpu=30)], [1], duration=5.0)
        ledger.admit(2, 0, [inst("b/0", cpu=30)], [1], duration=15.0)
        sim.run(until=6.0)
        assert ledger.n_completed == 1
        assert ledger.n_active == 1
        assert list(d[1].available.values) == [70.0, 90.0]
        sim.run(until=16.0)
        assert ledger.n_completed == 2
        assert list(d[1].available.values) == [100.0, 100.0]


class TestPeerFailure:
    def test_fail_peer_kills_its_sessions(self):
        sim, d, net, ledger, outcomes = make()
        s = ledger.admit(1, 0, [inst("a/0"), inst("b/0")], [1, 2], 10.0)
        failed = ledger.fail_peer(2)
        assert [f.session_id for f in failed] == [s.session_id]
        assert s.state is SessionState.FAILED
        assert "departed" in s.failure_reason
        assert ledger.n_failed == 1
        assert ledger.n_active == 0
        # Peer 1's resources released; peer 2's skipped (it left).
        assert list(d[1].available.values) == [100.0, 100.0]
        assert net.n_reserved_pairs == 0

    def test_fail_user_peer_kills_session(self):
        sim, d, net, ledger, _ = make()
        ledger.admit(1, 0, [inst("a/0")], [1], 10.0)
        failed = ledger.fail_peer(0)  # the user's own host departs
        assert len(failed) == 1

    def test_fail_uninvolved_peer_noop(self):
        sim, d, net, ledger, _ = make()
        ledger.admit(1, 0, [inst("a/0")], [1], 10.0)
        assert ledger.fail_peer(4) == []
        assert ledger.n_active == 1

    def test_failed_session_does_not_complete_later(self):
        sim, d, net, ledger, outcomes = make()
        ledger.admit(1, 0, [inst("a/0")], [1], 10.0)
        ledger.fail_peer(1)
        sim.run(until=11.0)  # the completion timer fires harmlessly
        assert ledger.n_completed == 0
        assert ledger.n_failed == 1
        assert len(outcomes) == 1

    def test_fail_peer_with_multiple_sessions(self):
        sim, d, net, ledger, _ = make()
        for rid in range(3):
            ledger.admit(rid, 0, [inst(f"a/{rid}", cpu=10)], [1], 10.0)
        failed = ledger.fail_peer(1)
        assert len(failed) == 3
        assert ledger.n_failed == 3

    def test_sessions_on_peer_tracking(self):
        sim, d, net, ledger, _ = make()
        s = ledger.admit(1, 0, [inst("a/0")], [1], 10.0)
        assert ledger.sessions_on_peer(1) == [s.session_id]
        assert ledger.sessions_on_peer(0) == [s.session_id]  # user side
        sim.run(until=11.0)
        assert ledger.sessions_on_peer(1) == []
