"""Property test: resource books stay balanced under arbitrary schedules.

Hundreds of thousands of admit / complete / depart events run in the
figure experiments; if any path leaks or double-releases resources the
results silently drift.  This drives random schedules through the ledger
and asserts the conservation invariants after every event.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance
from repro.sessions.admission import AdmissionError
from repro.sessions.session import SessionLedger
from repro.sim import Simulator

NAMES = ("cpu", "memory")
N_PEERS = 8
CAPACITY = 200.0
ACCESS = 1e5


def check_invariants(directory, network):
    for peer in directory.alive_peers():
        assert np.all(peer.available.values >= -1e-9)
        assert np.all(peer.available.values <= peer.capacity.values + 1e-9)
        assert -1e-9 <= peer.avail_up <= peer.access_bw + 1e-9
        assert -1e-9 <= peer.avail_down <= peer.access_bw + 1e-9


events = st.lists(
    st.tuples(
        st.sampled_from(["admit", "advance", "depart"]),
        st.integers(0, 2**31 - 1),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(events)
def test_ledger_conserves_resources(schedule):
    sim = Simulator()
    directory = PeerDirectory(NAMES)
    for _ in range(N_PEERS):
        directory.create_peer(
            ResourceVector(NAMES, [CAPACITY, CAPACITY]), ACCESS, 0.0
        )
    network = NetworkModel(directory, seed=0)
    ledger = SessionLedger(sim, directory, network)
    req_id = 0

    for op, seed in schedule:
        rng = np.random.default_rng(seed)
        if op == "admit":
            alive = directory.alive_ids
            if len(alive) < 2:
                continue
            n_hops = int(rng.integers(1, 4))
            peers = [alive[int(rng.integers(len(alive)))] for _ in range(n_hops)]
            user = alive[int(rng.integers(len(alive)))]
            instances = [
                ServiceInstance(
                    f"i/{req_id}/{k}",
                    f"s{k}",
                    QoSVector(),
                    QoSVector(),
                    ResourceVector(NAMES, rng.uniform(1, 80, 2)),
                    float(rng.uniform(1e3, 5e4)),
                )
                for k in range(n_hops)
            ]
            try:
                ledger.admit(req_id, user, instances, peers,
                             duration=float(rng.uniform(0.5, 5.0)))
            except AdmissionError:
                pass
            req_id += 1
        elif op == "advance":
            sim.run(until=sim.now + float(rng.uniform(0.1, 3.0)))
        else:  # depart
            alive = directory.alive_ids
            if len(alive) <= 2:
                continue
            victim = alive[int(rng.integers(len(alive)))]
            ledger.fail_peer(victim)
            directory.depart(victim, sim.now)
        check_invariants(directory, network)

    # Drain everything: all books must return to empty.
    sim.run()
    assert ledger.n_active == 0
    assert network.n_reserved_pairs == 0
    for peer in directory.alive_peers():
        assert np.allclose(peer.available.values, peer.capacity.values)
        assert peer.avail_up == peer.access_bw or np.isclose(
            peer.avail_up, peer.access_bw
        )
        assert np.isclose(peer.avail_down, peer.access_bw)
