"""Whole-system determinism: identical seeds give identical runs.

Paired-comparison methodology (Fig. 5-8 run the three algorithms on the
"same" grid) relies on this: all randomness flows from named streams, so
a seed pins every draw, and simultaneous events fire FIFO.
"""


import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig
from repro.workload.generator import WorkloadConfig


def config(seed=0, lookup="chord", churn=0.0):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=200,
            seed=seed,
            lookup_protocol=lookup,
            churn=ChurnConfig(rate_per_min=churn) if churn else None,
        ),
        workload=WorkloadConfig(rate_per_min=25.0, horizon=5.0,
                                duration_range=(1.0, 4.0)),
    )


def fingerprint(result):
    return (
        result.n_requests,
        result.success_ratio,
        tuple(sorted(result.metrics.breakdown().items())),
        result.mean_lookup_hops,
    )


class TestRunDeterminism:
    @pytest.mark.parametrize("algorithm", ["qsa", "random", "fixed"])
    def test_identical_runs(self, algorithm):
        a = run_experiment(config().with_algorithm(algorithm))
        b = run_experiment(config().with_algorithm(algorithm))
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.slow
    def test_identical_under_churn(self):
        a = run_experiment(config(churn=5.0).with_algorithm("qsa"))
        b = run_experiment(config(churn=5.0).with_algorithm("qsa"))
        assert fingerprint(a) == fingerprint(b)
        assert (a.n_arrivals, a.n_departures) == (b.n_arrivals, b.n_departures)

    @pytest.mark.slow
    def test_identical_on_can(self):
        a = run_experiment(config(lookup="can").with_algorithm("qsa"))
        b = run_experiment(config(lookup="can").with_algorithm("qsa"))
        assert fingerprint(a) == fingerprint(b)

    def test_different_seed_different_run(self):
        a = run_experiment(config(seed=1).with_algorithm("qsa"))
        b = run_experiment(config(seed=2).with_algorithm("qsa"))
        assert fingerprint(a) != fingerprint(b)


class TestPairedWorkloads:
    def test_same_request_sequence_across_algorithms(self):
        """The workload stream is identical no matter which algorithm
        consumes it (the paired-comparison prerequisite)."""
        streams = {}
        for algorithm in ("qsa", "random"):
            grid = P2PGrid(config().grid)
            from repro.workload.generator import RequestGenerator

            seen = []
            gen = RequestGenerator(
                grid.sim, config().workload, grid.applications,
                alive_peer_ids=lambda g=grid: g.directory.alive_ids,
                sink=seen.append,
                rng=grid.rngs.stream("workload"),
            )
            agg = grid.make_aggregator(algorithm)  # draws from its own stream
            gen.start()
            grid.sim.run()
            streams[algorithm] = [
                (r.arrival_time, r.peer_id, r.application, r.qos_level,
                 r.session_duration)
                for r in seen
            ]
        assert streams["qsa"] == streams["random"]

    def test_same_catalog_across_algorithms(self):
        grids = [P2PGrid(config().grid) for _ in range(2)]
        a, b = grids
        assert set(a.catalog.instances) == set(b.catalog.instances)
        for iid in a.catalog.instances:
            assert a.catalog.instances[iid].qout == b.catalog.instances[iid].qout
            assert a.catalog.hosts(iid) == b.catalog.hosts(iid)

    def test_aggregator_streams_are_isolated(self):
        """Draw order in one algorithm's stream cannot perturb another's."""
        grid = P2PGrid(config().grid)
        qsa_rng_a = grid.rngs.fresh("aggregator-qsa")
        # Consume heavily from the random algorithm's stream.
        grid.rngs.stream("aggregator-random").random(10_000)
        qsa_rng_b = grid.rngs.fresh("aggregator-qsa")
        assert (qsa_rng_a.random(8) == qsa_rng_b.random(8)).all()
