"""Property-based tests for the QoS model (Eq. 1 relation)."""

from hypothesis import given, strategies as st

from repro.core.qos import Interval, QoSVector, satisfies

# -- strategies ---------------------------------------------------------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw):
    lo = draw(finite)
    width = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    return Interval(lo, lo + width)


qos_values = st.one_of(
    st.text(min_size=1, max_size=8),
    st.integers(min_value=-1000, max_value=1000),
    finite,
    intervals(),
)

param_names = st.sampled_from(["format", "rate", "res", "quality", "color"])


def qos_vectors(max_params=4):
    return st.dictionaries(param_names, qos_values, max_size=max_params).map(
        QoSVector
    )


# -- interval properties ---------------------------------------------------------

@given(intervals())
def test_interval_contains_itself(iv):
    assert iv.contains_interval(iv)


@given(intervals(), intervals())
def test_intersection_contained_in_both(a, b):
    inter = a.intersect(b)
    if inter is not None:
        assert a.contains_interval(inter)
        assert b.contains_interval(inter)


@given(intervals(), intervals(), intervals())
def test_interval_containment_transitive(a, b, c):
    if a.contains_interval(b) and b.contains_interval(c):
        assert a.contains_interval(c)


@given(intervals(), finite)
def test_contains_value_consistent_with_bounds(iv, x):
    assert iv.contains_value(x) == (iv.lo <= x <= iv.hi)


# -- satisfy-relation properties ----------------------------------------------

@given(qos_vectors())
def test_everything_satisfies_empty_requirement(q):
    assert satisfies(q, QoSVector())


@given(qos_vectors())
def test_empty_offer_satisfies_nothing_nonempty(q):
    if q.dim > 0:
        assert not satisfies(QoSVector(), q)


@given(qos_vectors(), qos_vectors(), qos_values)
def test_extra_offered_params_never_hurt(offered, required, extra):
    """Adding an unrelated dimension to the offer preserves satisfaction."""
    if satisfies(offered, required):
        widened = QoSVector(dict(offered.items()) | {"__extra__": extra})
        assert satisfies(widened, required)


@given(qos_vectors(), qos_vectors())
def test_dropping_requirements_never_hurts(offered, required):
    if satisfies(offered, required) and required.dim > 0:
        names = list(required)
        reduced = QoSVector({n: required[n] for n in names[:-1]})
        assert satisfies(offered, reduced)


@given(qos_vectors())
def test_satisfy_is_reflexive(q):
    """Every vector satisfies itself: single values match by equality,
    ranges contain themselves."""
    assert satisfies(q, q)


@given(qos_vectors(max_params=3), qos_vectors(max_params=3))
def test_satisfies_is_deterministic(a, b):
    assert satisfies(a, b) == satisfies(a, b)
