"""Property-based tests for QCS (optimality, method agreement)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.composition import CompositionError, ConsistencyGraph, compose_qcs
from repro.core.baselines import random_consistent_path
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e6)
USER = QoSVector(format="final", quality=Interval(1, 3))


@st.composite
def catalogs(draw):
    """Random layered catalogs with 2-4 services, 1-6 instances each."""
    n_services = draw(st.integers(2, 4))
    services = tuple(f"s{k}" for k in range(n_services))
    rng_seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(rng_seed)
    cat = {}
    for k, svc in enumerate(services):
        n_inst = draw(st.integers(1, 6))
        instances = []
        for j in range(n_inst):
            fmt_in = f"if{k}/{rng.integers(2)}"
            fmt_out = (
                f"if{k+1}/{rng.integers(2)}" if k < n_services - 1 else "final"
            )
            quality = int(rng.integers(1, 4))
            instances.append(
                ServiceInstance(
                    f"{svc}/{j}",
                    svc,
                    qin=QoSVector(format=fmt_in, quality=Interval(quality, 3)),
                    qout=QoSVector(format=fmt_out, quality=quality),
                    resources=ResourceVector(NAMES, rng.uniform(1, 900, 2)),
                    bandwidth=float(rng.uniform(1e3, 9e5)),
                )
            )
        cat[svc] = instances
    return AbstractServicePath("prop", services), cat


@settings(max_examples=60, deadline=None)
@given(catalogs())
def test_dp_and_dijkstra_agree(path_cat):
    path, cat = path_cat
    try:
        a = compose_qcs(path, cat, USER, WEIGHTS, method="dp")
    except CompositionError:
        try:
            compose_qcs(path, cat, USER, WEIGHTS, method="dijkstra")
            raise AssertionError("dijkstra found a path dp did not")
        except CompositionError:
            return
    b = compose_qcs(path, cat, USER, WEIGHTS, method="dijkstra")
    assert np.isclose(a.score, b.score)
    assert [i.instance_id for i in a.instances] == [
        i.instance_id for i in b.instances
    ]


@settings(max_examples=60, deadline=None)
@given(catalogs(), st.integers(0, 2**31))
def test_qcs_not_beaten_by_random_paths(path_cat, seed):
    """QCS is minimal: no random consistent path scores lower."""
    path, cat = path_cat
    try:
        best = compose_qcs(path, cat, USER, WEIGHTS)
    except CompositionError:
        return
    graph = ConsistencyGraph(path, cat, USER, WEIGHTS)
    rng = np.random.default_rng(seed)
    for _ in range(10):
        sample = random_consistent_path(graph, rng)
        assert sample.score >= best.score - 1e-9


@settings(max_examples=60, deadline=None)
@given(catalogs())
def test_composed_path_is_qos_consistent(path_cat):
    from repro.core.qos import satisfies

    path, cat = path_cat
    try:
        composed = compose_qcs(path, cat, USER, WEIGHTS)
    except CompositionError:
        return
    chain = composed.instances
    for up, down in zip(chain, chain[1:]):
        assert satisfies(up.qout, down.qin)
    assert satisfies(chain[-1].qout, USER)


@settings(max_examples=40, deadline=None)
@given(catalogs())
def test_total_equals_sum_of_parts(path_cat):
    path, cat = path_cat
    try:
        composed = compose_qcs(path, cat, USER, WEIGHTS)
    except CompositionError:
        return
    res = np.sum([i.resources.values for i in composed.instances], axis=0)
    bw = sum(i.bandwidth for i in composed.instances)
    assert np.allclose(composed.total.resources.values, res)
    assert np.isclose(composed.total.bandwidth, bw)
