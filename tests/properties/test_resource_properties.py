"""Property-based tests for resource tuples and the Def. 3.1 order."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.resources import ResourceTuple, ResourceVector, WeightProfile

NAMES = ("cpu", "memory")

amounts = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def tuples(draw):
    cpu = draw(amounts)
    mem = draw(amounts)
    bw = draw(st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    return ResourceTuple(ResourceVector(NAMES, [cpu, mem]), bw)


@st.composite
def profiles(draw):
    w = [draw(st.floats(min_value=0.01, max_value=1.0)) for _ in range(3)]
    return WeightProfile(
        NAMES, w[:2], w[2], (1e4, 1e4), 1e7, normalize=True
    )


@given(profiles(), tuples(), tuples())
def test_compare_antisymmetric(p, a, b):
    assert p.compare(a, b) == -p.compare(b, a)


@given(profiles(), tuples())
def test_compare_reflexive_zero(p, a):
    assert p.compare(a, a) == 0


@given(profiles(), tuples(), tuples())
def test_compare_matches_score_order(p, a, b):
    """Away from float-noise ties, Def. 3.1 and the scalar score agree.

    (At exact ties the two formulations can round the ~1e-19 residue in
    opposite directions -- mathematically both are zero.)
    """
    cmp = p.compare(a, b)
    ds = p.score(a) - p.score(b)
    if abs(ds) > 1e-9:
        assert np.sign(ds) == cmp
    else:
        # Near-tie: compare must not report a *large* difference; its
        # internal diff is the same quantity up to rounding.
        assert cmp in (-1, 0, 1)


@given(profiles(), tuples(), tuples(), tuples())
def test_order_preserved_under_addition(p, a, b, c):
    """Dijkstra's correctness hinges on additive monotonicity."""
    if p.compare(a, b) > 0:
        assert p.score(a + c) >= p.score(b + c) - 1e-9


@given(profiles(), tuples(), tuples())
def test_score_additive(p, a, b):
    assert np.isclose(p.score(a + b), p.score(a) + p.score(b), rtol=1e-9)


@given(tuples(), tuples())
def test_tuple_addition_commutative(a, b):
    ab, ba = a + b, b + a
    assert ab.resources == ba.resources
    assert ab.bandwidth == ba.bandwidth


@given(profiles(), tuples())
def test_scores_nonnegative(p, a):
    assert p.score(a) >= 0.0


@given(st.lists(tuples(), min_size=1, max_size=6))
def test_sum_matches_manual_accumulation(ts):
    total = ResourceTuple.zero(NAMES)
    for t in ts:
        total = total + t
    assert np.allclose(
        total.resources.values, np.sum([t.resources.values for t in ts], axis=0)
    )
    assert np.isclose(total.bandwidth, sum(t.bandwidth for t in ts))
