"""Model-based property tests for the DHT substrates.

Random sequences of join / leave / put / get are executed against both
DHTs and checked against a plain-dict reference model: whatever was put
and not overwritten must be retrievable from any member, regardless of
the membership churn in between.  This is the property the registry
relies on for discovery correctness under topological variation.
"""

from hypothesis import given, settings, strategies as st

from repro.lookup.can import CanNetwork
from repro.lookup.chord import ChordRing

ops = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(0, 200)),
        st.tuples(st.just("leave"), st.integers(0, 200)),
        st.tuples(st.just("put"), st.integers(0, 30)),
        st.tuples(st.just("get"), st.integers(0, 30)),
    ),
    min_size=5,
    max_size=60,
)


def run_model(dht, schedule, initial_members):
    members = set(initial_members)
    reference = {}
    version = 0
    for op, arg in schedule:
        if op == "join":
            if arg not in members:
                dht.join(arg)
                members.add(arg)
        elif op == "leave":
            if arg in members and len(members) > 1:
                dht.leave(arg)
                members.discard(arg)
        elif op == "put":
            version += 1
            dht.put(f"key-{arg}", version)
            reference[f"key-{arg}"] = version
        else:  # get
            reader = sorted(members)[0]
            value, hops = dht.get(f"key-{arg}", from_peer=reader)
            assert value == reference.get(f"key-{arg}")
            assert hops >= 0
    # Final sweep: every key readable from every surviving member class.
    reader = sorted(members)[-1]
    for key, expected in reference.items():
        value, _ = dht.get(key, from_peer=reader)
        assert value == expected


@settings(max_examples=30, deadline=None)
@given(ops)
def test_chord_consistent_with_dict_model(schedule):
    ring = ChordRing(bits=16, seed=1)
    initial = range(300, 310)
    for pid in initial:
        ring.join(pid)
    run_model(ring, schedule, initial)


@settings(max_examples=30, deadline=None)
@given(ops)
def test_can_consistent_with_dict_model(schedule):
    net = CanNetwork(dimensions=2, seed=1)
    initial = range(300, 310)
    for pid in initial:
        net.join(pid)
    run_model(net, schedule, initial)


@settings(max_examples=20, deadline=None)
@given(ops)
def test_can_volume_invariant_under_schedule(schedule):
    net = CanNetwork(dimensions=2, seed=2)
    members = set(range(300, 306))
    for pid in members:
        net.join(pid)
    for op, arg in schedule:
        if op == "join" and arg not in members:
            net.join(arg)
            members.add(arg)
        elif op == "leave" and arg in members and len(members) > 1:
            net.leave(arg)
            members.discard(arg)
        assert abs(net.total_volume() - 1.0) < 1e-9


@settings(max_examples=20, deadline=None)
@given(ops)
def test_chord_storage_partition_is_exact(schedule):
    """Every stored key lives on exactly one node."""
    ring = ChordRing(bits=16, seed=3)
    members = set(range(300, 306))
    for pid in members:
        ring.join(pid)
    keys = set()
    for op, arg in schedule:
        if op == "join" and arg not in members:
            ring.join(arg)
            members.add(arg)
        elif op == "leave" and arg in members and len(members) > 1:
            ring.leave(arg)
            members.discard(arg)
        elif op == "put":
            ring.put(f"key-{arg}", arg)
            keys.add(f"key-{arg}")
        holders = {
            k: sum(1 for n in ring._nodes.values() if k in n.store)
            for k in keys
        }
        assert all(count == 1 for count in holders.values()), holders
