"""Shared test configuration: Hypothesis profiles.

The ``chaos`` profile raises the randomized-example budget for the
fault-injection property suites; the CI chaos job selects it with
``HYPOTHESIS_PROFILE=chaos``.  Tests that scale with the profile read
:data:`CHAOS_EXAMPLES` instead of hard-coding a count.
"""

import os

from hypothesis import settings

settings.register_profile("default", settings(deadline=None))
settings.register_profile(
    "chaos", settings(deadline=None, max_examples=200)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

#: Example budget for the randomized fault-plan suites: enough to be
#: meaningful on a laptop run, 200+ under the CI chaos profile.
CHAOS_EXAMPLES = settings().max_examples if settings().max_examples >= 200 else 25
