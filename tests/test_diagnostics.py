"""Tests for the grid invariant checker -- and, through it, end-to-end
consistency of heavy churny workloads on both DHT substrates."""


import pytest

from repro.diagnostics import check_grid_invariants
from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig
from repro.sessions.recovery import RecoveryConfig


def drive(grid, minutes=20, per_minute=3):
    agg = grid.make_aggregator("qsa")

    def tick():
        for _ in range(per_minute):
            agg.aggregate(grid.make_request("video-on-demand", duration=5.0))

    for t in range(minutes):
        grid.sim.call_at(float(t), tick)
    grid.sim.run(until=float(minutes))


class TestCleanGrids:
    def test_fresh_grid_clean(self):
        grid = P2PGrid(GridConfig(n_peers=150, seed=1))
        assert check_grid_invariants(grid) == []

    def test_loaded_grid_clean(self):
        grid = P2PGrid(GridConfig(n_peers=150, seed=2))
        drive(grid, minutes=10)
        assert check_grid_invariants(grid) == []

    def test_churny_grid_clean(self):
        grid = P2PGrid(GridConfig(
            n_peers=150, seed=3, churn=ChurnConfig(rate_per_min=5.0),
        ))
        drive(grid, minutes=15)
        grid.churn.stop()
        assert check_grid_invariants(grid) == []

    def test_churny_grid_with_recovery_clean(self):
        grid = P2PGrid(GridConfig(
            n_peers=150, seed=4,
            churn=ChurnConfig(rate_per_min=5.0),
            recovery=RecoveryConfig(),
        ))
        drive(grid, minutes=15)
        grid.churn.stop()
        assert check_grid_invariants(grid) == []

    @pytest.mark.slow
    def test_can_grid_clean_under_churn(self):
        grid = P2PGrid(GridConfig(
            n_peers=120, seed=5,
            lookup_protocol="can",
            churn=ChurnConfig(rate_per_min=4.0),
        ))
        drive(grid, minutes=10, per_minute=2)
        grid.churn.stop()
        assert check_grid_invariants(grid) == []

    def test_registry_audit_can_be_skipped(self):
        grid = P2PGrid(GridConfig(n_peers=150, seed=1))
        assert check_grid_invariants(grid, registry=False) == []


class TestDetectsCorruption:
    def test_detects_resource_leak(self):
        grid = P2PGrid(GridConfig(n_peers=100, seed=6))
        peer = grid.directory[0]
        peer.available.values += 50.0  # availability beyond capacity
        problems = check_grid_invariants(grid, registry=False)
        assert any("exceeds capacity" in p for p in problems)

    def test_detects_negative_availability(self):
        grid = P2PGrid(GridConfig(n_peers=100, seed=6))
        grid.directory[0].available.values -= 1e9
        problems = check_grid_invariants(grid, registry=False)
        assert any("negative availability" in p for p in problems)

    def test_detects_catalog_mismatch(self):
        grid = P2PGrid(GridConfig(n_peers=100, seed=7))
        iid = next(iter(grid.catalog.instances))
        some_host = next(iter(grid.catalog.hosts(iid)))
        grid.catalog.hosted_by[some_host].discard(iid)  # break the inverse
        problems = check_grid_invariants(grid, registry=False)
        assert any("hosted_by disagrees" in p for p in problems)

    def test_detects_registry_drift(self):
        grid = P2PGrid(GridConfig(n_peers=100, seed=8))
        iid = next(iter(grid.catalog.instances))
        grid.ring.put(grid.registry.INSTANCE_PREFIX + iid, frozenset({10**6}))
        problems = check_grid_invariants(grid)
        assert any("host record" in p for p in problems)

    def test_detects_session_on_dead_peer(self):
        grid = P2PGrid(GridConfig(n_peers=100, seed=9))
        agg = grid.make_aggregator("qsa")
        res = None
        for _ in range(10):
            res = agg.aggregate(
                grid.make_request("video-on-demand", duration=50.0)
            )
            if res.admitted:
                break
        assert res.admitted
        # Kill the peer *without* the proper departure path.
        grid.directory.depart(res.peers[0], grid.sim.now)
        problems = check_grid_invariants(grid, registry=False)
        assert any("active on dead peer" in p for p in problems)


class TestEmptyPopulation:
    def test_registry_check_survives_zero_alive_peers(self):
        # Regression: next(iter(alive)) used to raise StopIteration when
        # every peer had departed; the checker must report, not crash.
        grid = P2PGrid(GridConfig(n_peers=10, seed=11))
        for pid in list(grid.directory.alive_ids):
            grid._on_peer_departure(pid)
            grid.directory.depart(pid, grid.sim.now)
        problems = check_grid_invariants(grid)
        assert any("no alive peer" in p for p in problems)
