"""Unit tests for the ASCII chart renderer."""

import math

import pytest

from repro.experiments.plotting import MARKERS, ascii_chart


def simple_series():
    return {"a": ([0, 1, 2], [0.0, 0.5, 1.0])}


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(simple_series(), width=4)
        with pytest.raises(ValueError):
            ascii_chart(simple_series(), height=2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": ([0, 1], [1.0])})

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": ([0, 1], [math.nan, math.nan])})


class TestRendering:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(simple_series(), x_label="t")
        assert "*" in out
        assert "* a" in out
        assert "t" in out

    def test_title_rendered(self):
        out = ascii_chart(simple_series(), title="My Chart")
        assert out.splitlines()[0] == "My Chart"

    def test_multi_series_distinct_markers(self):
        out = ascii_chart({
            "one": ([0, 1], [0.1, 0.2]),
            "two": ([0, 1], [0.8, 0.9]),
        })
        assert MARKERS[0] in out and MARKERS[1] in out
        assert "one" in out and "two" in out

    def test_y_range_labels(self):
        out = ascii_chart(simple_series(), y_range=(0.0, 1.0))
        assert "1" in out.splitlines()[0]
        lines = out.splitlines()
        assert any(line.strip().startswith("0 ") or "0 ┤" in line
                   for line in lines)

    def test_x_axis_extents_printed(self):
        out = ascii_chart({"a": ([5, 50], [0.1, 0.9])})
        assert "5" in out and "50" in out

    def test_nan_gap_does_not_crash(self):
        out = ascii_chart({"a": ([0, 1, 2, 3], [0.1, math.nan, 0.5, 0.6])})
        assert "*" in out

    def test_flat_series_padded(self):
        out = ascii_chart({"a": ([0, 1], [0.5, 0.5])})
        assert "*" in out

    def test_single_point_series(self):
        out = ascii_chart({"a": ([1], [0.5])}, y_range=(0, 1))
        assert "*" in out

    def test_line_is_connected(self):
        """Monotone data should mark nearly every column."""
        xs = list(range(10))
        ys = [x / 9 for x in xs]
        out = ascii_chart({"a": (xs, ys)}, width=30, height=10)
        plot_lines = [l for l in out.splitlines() if "│" in l or "┤" in l]
        marked_cols = set()
        for line in plot_lines:
            body = line.split("│")[-1].split("┤")[-1]
            for i, ch in enumerate(body):
                if ch == "*":
                    marked_cols.add(i)
        assert len(marked_cols) >= 25  # dense coverage across 30 columns
