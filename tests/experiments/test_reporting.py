"""Unit tests for text reporting helpers."""

import numpy as np

from repro.experiments.reporting import banner, format_series_table, format_sweep_table


class TestBanner:
    def test_contains_title(self):
        out = banner("Figure 5", "subtitle here")
        assert "Figure 5" in out
        assert "subtitle here" in out

    def test_no_subtitle(self):
        out = banner("T")
        assert out.count("\n") == 2


class TestSweepTable:
    def test_rows_and_columns(self):
        out = format_sweep_table(
            "rate", [100, 200], {"qsa": [0.9, 0.8], "random": [0.7, 0.6]}
        )
        lines = out.splitlines()
        assert "qsa" in lines[0] and "random" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows
        assert "100" in lines[2]
        assert "0.900" in lines[2]
        assert "0.600" in lines[3]


class TestSeriesTable:
    def test_nan_renders_dash(self):
        out = format_series_table(
            "t", [2.0, 4.0], {"qsa": [0.5, np.nan]}
        )
        lines = out.splitlines()
        assert "0.500" in lines[2]
        assert "-" in lines[3]
