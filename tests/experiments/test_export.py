"""Unit tests for result export (JSON/CSV)."""

import csv
import json
import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import (
    result_to_dict,
    save_result_json,
    series_to_csv,
    sweep_to_csv,
)
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig
from repro.workload.generator import WorkloadConfig


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(
        grid=GridConfig(n_peers=150, seed=3),
        workload=WorkloadConfig(rate_per_min=20.0, horizon=3.0,
                                duration_range=(1.0, 2.0)),
    )
    return run_experiment(cfg.with_algorithm("qsa"))


class TestResultJson:
    def test_dict_fields(self, result):
        d = result_to_dict(result)
        assert d["algorithm"] == "qsa"
        assert 0.0 <= d["success_ratio"] <= 1.0
        assert d["config"]["n_peers"] == 150
        assert d["config"]["churn_per_min"] == 0.0
        assert "records" not in d

    def test_records_included_on_request(self, result):
        d = result_to_dict(result, include_records=True)
        assert len(d["records"]) == result.n_requests
        sample = d["records"][0]
        assert {"request_id", "status", "success"} <= set(sample)

    def test_roundtrips_through_json(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "run.json",
                                include_records=True)
        loaded = json.loads(path.read_text())
        assert loaded["n_requests"] == result.n_requests
        assert loaded["breakdown"] == dict(result.metrics.breakdown())


class TestSweepCsv:
    def test_writes_rows(self, tmp_path):
        path = sweep_to_csv(
            "rate", [100, 200],
            {"qsa": [0.9, 0.8], "random": [0.7, 0.6]},
            tmp_path / "sweep.csv",
        )
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["rate", "qsa", "random"]
        assert rows[1] == ["100", "0.9", "0.7"]
        assert len(rows) == 3

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_to_csv("x", [1, 2], {"a": [0.5]}, tmp_path / "bad.csv")


class TestSeriesCsv:
    def test_nan_becomes_empty_cell(self, tmp_path):
        path = series_to_csv(
            [2.0, 4.0], {"qsa": [0.5, math.nan]}, tmp_path / "series.csv"
        )
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["time_min", "qsa"]
        assert rows[1] == ["2.0", "0.5"]
        assert rows[2] == ["4.0", ""]
