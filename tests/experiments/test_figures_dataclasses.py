"""Unit tests for figure result containers and remaining edge paths."""

import numpy as np

from repro.experiments.figures import SeriesResult, SweepResult


class TestSweepResult:
    def make(self):
        return SweepResult(
            x_label="rate",
            x_values=[100.0, 200.0],
            ratios={
                "qsa": [0.9, 0.85],
                "random": [0.7, 0.65],
                "fixed": [0.2, 0.1],
            },
        )

    def test_winner_at_each_point(self):
        sweep = self.make()
        assert sweep.winner_at(0) == "qsa"
        assert sweep.winner_at(1) == "qsa"

    def test_winner_changes_with_data(self):
        sweep = SweepResult("x", [0.0], {"a": [0.1], "b": [0.9]})
        assert sweep.winner_at(0) == "b"

    def test_runs_default_empty(self):
        assert self.make().runs == {}


class TestSeriesResult:
    def test_fields_roundtrip(self):
        series = SeriesResult(
            times=np.array([2.0, 4.0]),
            ratios={"qsa": np.array([0.9, np.nan])},
            overall={"qsa": 0.9},
        )
        assert series.overall["qsa"] == 0.9
        assert np.isnan(series.ratios["qsa"][1])


class TestChordRoutingEdges:
    def test_two_node_ring_routes_everywhere(self):
        from repro.lookup.chord import ChordRing

        ring = ChordRing(bits=16, seed=0)
        ring.join(0)
        ring.join(1)
        for i in range(30):
            ring.put(f"k{i}", i)
        for i in range(30):
            for start in (0, 1):
                value, hops = ring.get(f"k{i}", from_peer=start)
                assert value == i
                assert hops <= 2

    def test_lookup_hops_bounded_by_ring_size(self):
        from repro.lookup.chord import ChordRing

        ring = ChordRing(bits=16, seed=5)
        for pid in range(24):
            ring.join(pid)
        ring.put("key", "v")
        for start in range(24):
            _, hops = ring.get("key", from_peer=start)
            assert hops < 24


class TestCanRoutingEdges:
    def test_one_dimensional_can(self):
        from repro.lookup.can import CanNetwork

        net = CanNetwork(dimensions=1, seed=0)
        for pid in range(16):
            net.join(pid)
        for i in range(20):
            net.put(f"k{i}", i)
        for i in range(20):
            value, hops = net.get(f"k{i}", from_peer=i % 16)
            assert value == i
            # 1-d ring: worst case ~N/2 hops.
            assert hops <= 16

    def test_single_node_can(self):
        from repro.lookup.can import CanNetwork

        net = CanNetwork(dimensions=2, seed=0)
        net.join(7)
        net.put("k", "v")
        value, hops = net.get("k", from_peer=7)
        assert value == "v" and hops == 0

    def test_leave_to_empty_then_rejoin(self):
        from repro.lookup.can import CanNetwork

        net = CanNetwork(dimensions=2, seed=0)
        net.join(0)
        net.leave(0)
        assert len(net) == 0
        net.join(1)
        net.put("k", 1)
        assert net.get("k", from_peer=1)[0] == 1


class TestExplainStatusNotes:
    def test_every_status_has_a_note(self):
        from repro.core.aggregation import AggregationStatus
        from repro.core.explain import _STATUS_NOTES

        for status in AggregationStatus:
            assert status in _STATUS_NOTES
            assert _STATUS_NOTES[status]
