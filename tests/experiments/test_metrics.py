"""Unit tests for the ψ metric collector."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationResult, AggregationStatus
from repro.experiments.metrics import MetricsCollector
from repro.services.qoscompiler import UserRequest
from repro.sessions.session import Session, SessionState


def request(rid, arrival=0.0, level="average"):
    return UserRequest(
        request_id=rid,
        peer_id=0,
        application="video-on-demand",
        qos_level=level,
        session_duration=5.0,
        arrival_time=arrival,
    )


def setup_result(rid, status, arrival=0.0, hops=3):
    return AggregationResult(
        request=request(rid, arrival), status=status, lookup_hops=hops
    )


def session_for(rid, state, reason=None):
    s = Session(
        session_id=rid,
        request_id=rid,
        user_peer=0,
        instances=(),
        peers=(),
        start=0.0,
        duration=5.0,
        state=state,
        failure_reason=reason,
    )
    return s


class TestOutcomes:
    def test_rejection_resolves_immediately(self):
        m = MetricsCollector()
        m.on_setup(setup_result(0, AggregationStatus.RESOURCES_DENIED))
        assert m.n_requests == 1
        assert m.n_resolved == 1
        assert m.success_ratio() == 0.0

    def test_admitted_pending_until_session(self):
        m = MetricsCollector()
        m.on_setup(setup_result(0, AggregationStatus.ADMITTED))
        assert m.n_resolved == 0
        m.on_session(session_for(0, SessionState.COMPLETED))
        assert m.n_resolved == 1
        assert m.success_ratio() == 1.0

    def test_session_failure_counts_against(self):
        m = MetricsCollector()
        m.on_setup(setup_result(0, AggregationStatus.ADMITTED))
        m.on_session(session_for(0, SessionState.FAILED, "peer 3 departed"))
        assert m.success_ratio() == 0.0
        assert "departed" in m.records[0].status

    def test_unknown_session_ignored(self):
        m = MetricsCollector()
        m.on_session(session_for(99, SessionState.COMPLETED))
        assert m.n_requests == 0

    def test_mixed_ratio(self):
        m = MetricsCollector()
        for rid, status in enumerate(
            [
                AggregationStatus.ADMITTED,
                AggregationStatus.ADMITTED,
                AggregationStatus.SELECTION_FAILED,
                AggregationStatus.COMPOSITION_FAILED,
            ]
        ):
            m.on_setup(setup_result(rid, status))
        m.on_session(session_for(0, SessionState.COMPLETED))
        m.on_session(session_for(1, SessionState.FAILED, "x"))
        assert m.success_ratio() == pytest.approx(0.25)

    def test_breakdown(self):
        m = MetricsCollector()
        m.on_setup(setup_result(0, AggregationStatus.ADMITTED))
        m.on_setup(setup_result(1, AggregationStatus.BANDWIDTH_DENIED))
        m.on_session(session_for(0, SessionState.COMPLETED))
        b = m.breakdown()
        assert b["completed"] == 1
        assert b["bandwidth-denied"] == 1


class TestSeries:
    def test_binning_by_arrival(self):
        m = MetricsCollector()
        # Two requests in bin 0 (one success), one in bin 2 (success).
        for rid, (arrival, ok) in enumerate(
            [(0.5, True), (1.5, False), (5.0, True)]
        ):
            status = (
                AggregationStatus.ADMITTED if ok
                else AggregationStatus.RESOURCES_DENIED
            )
            m.on_setup(setup_result(rid, status, arrival=arrival))
            if ok:
                m.on_session(session_for(rid, SessionState.COMPLETED))
        times, ratios = m.time_series(bin_minutes=2.0, horizon=6.0)
        assert list(times) == [2.0, 4.0, 6.0]
        assert ratios[0] == pytest.approx(0.5)
        assert np.isnan(ratios[1])
        assert ratios[2] == pytest.approx(1.0)

    def test_empty_series(self):
        m = MetricsCollector()
        times, ratios = m.time_series()
        assert len(times) == 0 and len(ratios) == 0

    def test_hops_and_fallbacks(self):
        m = MetricsCollector()
        m.on_setup(setup_result(0, AggregationStatus.ADMITTED, hops=7))
        assert m.mean_lookup_hops() == 7.0
        assert m.fallback_rate() == 0.0
