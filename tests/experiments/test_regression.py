"""Unit tests for regression tracking."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.regression import (
    compare_to_baseline,
    fingerprint,
    save_baseline,
)
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig
from repro.workload.generator import WorkloadConfig


def run(seed=0, algorithm="qsa", rate=20.0):
    cfg = ExperimentConfig(
        grid=GridConfig(n_peers=150, seed=seed),
        workload=WorkloadConfig(rate_per_min=rate, horizon=3.0,
                                duration_range=(1.0, 2.0)),
    )
    return run_experiment(cfg.with_algorithm(algorithm))


@pytest.fixture(scope="module")
def result():
    return run()


class TestRoundtrip:
    def test_identical_run_is_clean(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "base.json")
        again = run()
        assert compare_to_baseline(again, path, tolerance=0.0) == []

    def test_fingerprint_fields(self, result):
        fp = fingerprint(result)
        assert fp["algorithm"] == "qsa"
        assert fp["n_peers"] == 150
        assert "breakdown" in fp

    def test_baseline_file_is_json(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "sub/dir/base.json")
        loaded = json.loads(path.read_text())
        assert loaded["n_requests"] == result.n_requests


class TestDetection:
    def test_config_mismatch_reported(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "base.json")
        other = run(seed=1)
        problems = compare_to_baseline(other, path)
        assert any("config mismatch" in p for p in problems)

    def test_psi_drift_reported(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "base.json")
        doctored = json.loads(path.read_text())
        doctored["success_ratio"] = max(0.0, doctored["success_ratio"] - 0.2)
        path.write_text(json.dumps(doctored))
        problems = compare_to_baseline(result, path, tolerance=0.05)
        assert any("drifted" in p for p in problems)

    def test_tolerance_allows_small_drift(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "base.json")
        doctored = json.loads(path.read_text())
        doctored["success_ratio"] += 0.01
        path.write_text(json.dumps(doctored))
        assert compare_to_baseline(result, path, tolerance=0.05) == []

    def test_breakdown_change_caught_in_exact_mode(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "base.json")
        doctored = json.loads(path.read_text())
        doctored["breakdown"]["made-up-status"] = 1
        path.write_text(json.dumps(doctored))
        problems = compare_to_baseline(result, path, tolerance=0.0)
        assert any("breakdown changed" in p for p in problems)

    def test_negative_tolerance_rejected(self, result, tmp_path):
        path = save_baseline(result, tmp_path / "base.json")
        with pytest.raises(ValueError):
            compare_to_baseline(result, path, tolerance=-0.1)
