"""Unit tests for multi-seed replication statistics."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import (
    AlgorithmStats,
    ReplicationResult,
    replicate,
    t_interval,
)
from repro.grid import GridConfig
from repro.workload.generator import WorkloadConfig


class TestTInterval:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            t_interval([])

    def test_single_observation_infinite(self):
        mean, hw = t_interval([0.5])
        assert mean == 0.5
        assert hw == float("inf")

    def test_identical_observations_zero_width(self):
        mean, hw = t_interval([0.7, 0.7, 0.7])
        assert mean == pytest.approx(0.7)
        assert hw == pytest.approx(0.0)

    def test_known_small_sample(self):
        # n=2: t(df=1)=12.706, sem = std/sqrt(2).
        mean, hw = t_interval([0.0, 1.0])
        sem = np.std([0.0, 1.0], ddof=1) / np.sqrt(2)
        assert mean == 0.5
        assert hw == pytest.approx(12.706 * sem)

    def test_large_sample_uses_normal(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.5, 0.1, size=100)
        mean, hw = t_interval(x)
        assert hw == pytest.approx(1.96 * x.std(ddof=1) / 10, rel=1e-6)

    def test_coverage_simulation(self):
        """~95% of intervals should cover the true mean."""
        rng = np.random.default_rng(1)
        covered = 0
        trials = 300
        for _ in range(trials):
            x = rng.normal(0.0, 1.0, size=8)
            mean, hw = t_interval(x)
            covered += abs(mean) <= hw
        assert 0.88 <= covered / trials <= 1.0


class TestAlgorithmStats:
    def test_summary_string(self):
        s = AlgorithmStats("qsa", [0.8, 0.9])
        text = str(s)
        assert "qsa" in text and "n=2" in text

    def test_std_single(self):
        assert AlgorithmStats("x", [0.5]).std == 0.0


class TestReplicationResult:
    def make(self):
        return ReplicationResult(
            stats={
                "qsa": AlgorithmStats("qsa", [0.9, 0.8, 0.85]),
                "random": AlgorithmStats("random", [0.7, 0.75, 0.9]),
            },
            seeds=(0, 1, 2),
        )

    def test_wins(self):
        r = self.make()
        assert r.wins("qsa", "random") == 2
        assert r.wins("random", "qsa") == 1

    def test_dominates(self):
        r = self.make()
        assert not r.dominates("qsa", "random")

    def test_summary_lists_all(self):
        text = self.make().summary()
        assert "qsa" in text and "random" in text


class TestReplicate:
    @pytest.fixture(scope="class")
    def replication(self):
        base = ExperimentConfig(
            grid=GridConfig(n_peers=200),
            workload=WorkloadConfig(rate_per_min=20.0, horizon=4.0,
                                    duration_range=(1.0, 3.0)),
        )
        return replicate(base, algorithms=("qsa", "random"), n_seeds=3)

    def test_runs_all_seeds(self, replication):
        assert replication.seeds == (0, 1, 2)
        assert len(replication.stats["qsa"].ratios) == 3

    def test_qsa_wins_most_seeds(self, replication):
        assert replication.wins("qsa", "random") >= 2

    def test_ratios_in_bounds(self, replication):
        for stats in replication.stats.values():
            assert all(0.0 <= r <= 1.0 for r in stats.ratios)

    def test_n_seeds_validated(self):
        with pytest.raises(ValueError):
            replicate(ExperimentConfig(), n_seeds=0)
