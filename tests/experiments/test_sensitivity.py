"""Unit tests for the sensitivity harness."""

import pytest

from repro.experiments.config import default_scale
from repro.experiments.sensitivity import KNOBS, SensitivityRow, sweep


class TestTransformers:
    def test_replicas_transform(self):
        base = default_scale(100, 10)
        cfg = KNOBS["replicas"][1](base, 30.0)
        lo, hi = cfg.grid.catalog.replicas_per_instance
        assert lo == 20 and hi == 40

    def test_instances_transform(self):
        base = default_scale(100, 10)
        cfg = KNOBS["instances"][1](base, 15.0)
        lo, hi = cfg.grid.catalog.instances_per_service
        assert lo == 10 and hi == 20  # paper's own range at the midpoint

    def test_probe_period_transform(self):
        base = default_scale(100, 10)
        cfg = KNOBS["probe_period"][1](base, 3.0)
        assert cfg.grid.probing.period == 3.0
        assert cfg.grid.probing.budget == base.grid.probing.budget

    def test_quality_share_transform(self):
        base = default_scale(100, 10)
        cfg = KNOBS["quality_high_share"][1](base, 0.8)
        w = cfg.grid.catalog.quality_weights
        assert w[2] == pytest.approx(0.8)
        assert sum(w) == pytest.approx(1.0)


class TestSweep:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            sweep("bogus", [1.0])

    def test_row_gap(self):
        row = SensitivityRow("replicas", 60.0, 0.9, 0.7)
        assert row.gap == pytest.approx(0.2)
        assert "replicas" in repr(row)

    def test_tiny_sweep_runs(self):
        rows = sweep("probe_period", [1.0], rate=20.0, horizon=3.0)
        assert len(rows) == 1
        assert 0.0 <= rows[0].qsa <= 1.0
        assert 0.0 <= rows[0].random <= 1.0
