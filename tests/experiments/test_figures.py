"""Miniature versions of the figure experiments (shape assertions).

These run the real figure code paths on tiny populations so the full
suite stays fast; the benches run the calibrated scales and record the
numbers in EXPERIMENTS.md.
"""


import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.workload.generator import WorkloadConfig


def tiny(rate, horizon, churn=0.0, seed=0):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=250,
            seed=seed,
            churn=ChurnConfig(rate_per_min=churn) if churn > 0 else None,
        ),
        workload=WorkloadConfig(rate_per_min=rate, horizon=horizon,
                                duration_range=(1.0, 10.0)),
    )


class TestSweepMachinery:
    def test_sweep_runs_all_algorithms(self):
        sweep = figures._sweep("x", [5.0], lambda x: tiny(x, 4.0))
        assert set(sweep.ratios) == {"qsa", "random", "fixed"}
        assert all(len(v) == 1 for v in sweep.ratios.values())

    def test_winner_at(self):
        sweep = figures.SweepResult(
            "x", [0], {"qsa": [0.9], "random": [0.5], "fixed": [0.1]}
        )
        assert sweep.winner_at(0) == "qsa"


@pytest.mark.slow
class TestFigureShapes:
    @pytest.fixture(scope="class")
    def mini_fig5(self):
        return figures._sweep(
            "rate", [10.0, 60.0], lambda r: tiny(r, 6.0, seed=3)
        )

    def test_fig5_qsa_wins_everywhere(self, mini_fig5):
        for i in range(2):
            assert mini_fig5.winner_at(i) == "qsa"

    def test_fig5_fixed_last(self, mini_fig5):
        for i in range(2):
            r = mini_fig5.ratios
            assert r["fixed"][i] <= r["random"][i] + 0.05

    def test_series_machinery(self):
        series = figures._series(tiny(30.0, 6.0, seed=4), bin_minutes=2.0)
        assert set(series.ratios) == {"qsa", "random", "fixed"}
        assert len(series.times) == 3
        assert set(series.overall) == {"qsa", "random", "fixed"}

    def test_churn_sweep_degrades_qsa(self):
        sweep = figures._sweep(
            "churn",
            [0.0, 8.0],
            lambda c: tiny(30.0, 6.0, churn=c, seed=5),
        )
        assert sweep.ratios["qsa"][1] <= sweep.ratios["qsa"][0] + 0.05


class TestPublicFigureAPIs:
    """The public figureN() helpers accept custom (tiny) parameters."""

    def test_figure5_signature(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        sweep = figures.figure5(rates=(100,), horizon=3.0, seed=6)
        assert sweep.x_values == [100]

    def test_figure7_signature(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        sweep = figures.figure7(churn_rates=(0,), rate=50.0, horizon=3.0, seed=6)
        assert sweep.x_values == [0]
