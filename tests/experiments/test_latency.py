"""Unit tests for latency analytics and the latency-aware Φ extension."""

import numpy as np
import pytest

from repro.core.selection import PeerInfo, PeerSelector, PhiWeights
from repro.core.resources import ResourceVector
from repro.experiments.latency import (
    mean_overlay_hop_ms,
    mean_path_latency,
    path_latency_ms,
    setup_latency_ms,
)
from repro.grid import GridConfig, P2PGrid

NAMES = ("cpu", "memory")


def rv(cpu, mem):
    return ResourceVector(NAMES, [cpu, mem])


class TestLatencyAwarePhi:
    def test_weights_include_latency_in_sum(self):
        w = PhiWeights(NAMES, [0.3, 0.3], 0.2, latency_weight=0.2)
        assert np.isclose(
            w.weights.sum() + w.bandwidth_weight + w.latency_weight, 1.0
        )

    def test_sum_violation_rejected(self):
        with pytest.raises(ValueError):
            PhiWeights(NAMES, [0.4, 0.4], 0.3, latency_weight=0.2)

    def test_latency_ref_validated(self):
        with pytest.raises(ValueError):
            PhiWeights(NAMES, [0.5, 0.3], 0.2, latency_ref_ms=0.0)

    def test_factory(self):
        w = PhiWeights.latency_aware(NAMES, latency_weight=0.25)
        assert w.latency_weight == pytest.approx(0.25)
        assert np.isclose(
            w.weights.sum() + w.bandwidth_weight + w.latency_weight, 1.0
        )

    def test_low_latency_scores_higher(self):
        w = PhiWeights.latency_aware(NAMES, latency_weight=0.3)
        near = w.phi(rv(100, 100), rv(50, 50), 1e6, 1e4, latency_ms=1.0)
        far = w.phi(rv(100, 100), rv(50, 50), 1e6, 1e4, latency_ms=200.0)
        assert near > far

    def test_zero_weight_ignores_latency(self):
        w = PhiWeights.uniform(NAMES)
        a = w.phi(rv(100, 100), rv(50, 50), 1e6, 1e4, latency_ms=1.0)
        b = w.phi(rv(100, 100), rv(50, 50), 1e6, 1e4, latency_ms=200.0)
        assert a == b

    def test_batch_matches_scalar_with_latency(self):
        w = PhiWeights.latency_aware(NAMES, latency_weight=0.2)
        req = rv(50, 50)
        rows = [(rv(80, 90), 5e5, 20.0), (rv(500, 400), 1e6, 150.0)]
        batch = w.phi_batch(
            np.stack([a.values for a, _, _ in rows]),
            req.values,
            np.array([b for _, b, _ in rows]),
            1e4,
            latencies_ms=np.array([l for _, _, l in rows]),
        )
        for k, (a, beta, lat) in enumerate(rows):
            assert np.isclose(batch[k], w.phi(a, req, beta, 1e4, lat))

    def test_batch_requires_latencies_when_weighted(self):
        w = PhiWeights.latency_aware(NAMES)
        with pytest.raises(ValueError):
            w.phi_batch(
                np.ones((2, 2)), np.ones(2), np.ones(2), 1.0,
            )

    def test_selector_prefers_near_peer_when_latency_aware(self):
        class View:
            def __init__(self, infos):
                self.infos = {i.peer_id: i for i in infos}

            def observe(self, observer, target):
                return self.infos.get(target)

        infos = [
            PeerInfo(1, rv(100, 100), 1e6, 1e9, 1.0),     # near
            PeerInfo(2, rv(110, 110), 1e6, 1e9, 200.0),   # slightly richer, far
        ]
        aware = PeerSelector(
            View(infos), PhiWeights.latency_aware(NAMES, latency_weight=0.4)
        )
        blind = PeerSelector(View(infos), PhiWeights.uniform(NAMES))
        rng = np.random.default_rng(0)
        assert aware.select_hop(0, [1, 2], rv(50, 50), 1e4, 1.0, rng).peer_id == 1
        assert blind.select_hop(0, [1, 2], rv(50, 50), 1e4, 1.0, rng).peer_id == 2


class TestLatencyAccounting:
    @pytest.fixture(scope="class")
    def admitted(self):
        grid = P2PGrid(GridConfig(n_peers=250, seed=17))
        agg = grid.make_aggregator("qsa")
        results = []
        for _ in range(15):
            r = agg.aggregate(grid.make_request("video-on-demand",
                                                duration=1.0))
            results.append(r)
        return grid, results

    def test_mean_overlay_hop(self, admitted):
        grid, _ = admitted
        assert mean_overlay_hop_ms(grid.network) == pytest.approx(
            np.mean(grid.network.latency_classes)
        )

    def test_path_latency_matches_manual_sum(self, admitted):
        grid, results = admitted
        r = next(r for r in results if r.session is not None)
        manual = sum(
            grid.network.latency_ms(s, d)
            for s, d, _ in r.session.connections()
        )
        assert path_latency_ms(r, grid.network) == pytest.approx(manual)

    @pytest.fixture(scope="class")
    def overloaded(self):
        """A grid too small for its workload: rejections guaranteed.

        Tiny capacities and many concurrent long high-QoS sessions
        exhaust the end systems, so some requests must come back without
        a session -- the path the admitted fixture cannot reach.
        """
        grid = P2PGrid(GridConfig(
            n_peers=20, seed=17, capacity_range=(60.0, 80.0)
        ))
        agg = grid.make_aggregator("qsa")
        results = [
            agg.aggregate(grid.make_request(
                "video-on-demand", qos_level="high", duration=500.0
            ))
            for _ in range(60)
        ]
        return grid, results

    def test_path_latency_requires_session(self, overloaded):
        grid, results = overloaded
        failed = [r for r in results if r.session is None]
        assert failed, "the overloaded grid must reject some requests"
        with pytest.raises(ValueError):
            path_latency_ms(failed[0], grid.network)

    def test_setup_latency_positive_and_larger_for_admitted(self, admitted):
        grid, results = admitted
        r = next(r for r in results if r.session is not None)
        total = setup_latency_ms(r, grid.network)
        assert total > 0
        # Discovery alone is a lower bound.
        assert total >= r.lookup_hops * mean_overlay_hop_ms(grid.network)

    def test_mean_path_latency(self, admitted):
        grid, results = admitted
        m = mean_path_latency(results, grid.network)
        assert m > 0

    def test_mean_path_latency_requires_admissions(self, admitted):
        grid, _ = admitted
        with pytest.raises(ValueError):
            mean_path_latency([], grid.network)
