"""Unit tests for load-balance analytics."""

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.experiments.loadbalance import UtilizationSampler, jain_index
from repro.network.peer import PeerDirectory
from repro.sim import Simulator

NAMES = ("cpu", "memory")


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index(np.array([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_single_user_of_n(self):
        # Classic: one active out of n gives 1/n.
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.uniform(0, 10, size=rng.integers(1, 20))
            j = jain_index(x)
            assert 1.0 / len(x) - 1e-12 <= j <= 1.0 + 1e-12

    def test_scale_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert jain_index(x) == pytest.approx(jain_index(10 * x))

    def test_all_zero_is_fair(self):
        assert jain_index(np.zeros(5)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([-1.0, 2.0]))


class TestUtilizationSampler:
    def make(self, n=4, period=1.0, horizon=None):
        sim = Simulator()
        d = PeerDirectory(NAMES)
        for _ in range(n):
            d.create_peer(ResourceVector(NAMES, [100, 100]), 1e6, 0.0)
        return sim, d, UtilizationSampler(sim, d, period, horizon)

    def test_period_validation(self):
        sim, d, _ = self.make()
        with pytest.raises(ValueError):
            UtilizationSampler(sim, d, period=0.0)

    def test_idle_grid_fully_fair(self):
        sim, d, sampler = self.make()
        assert sampler.sample_once() == pytest.approx(1.0)
        assert sampler.mean_util[-1] == 0.0

    def test_detects_skew(self):
        sim, d, sampler = self.make()
        d[0].reserve(ResourceVector(NAMES, [80, 80]))
        j = sampler.sample_once()
        assert j < 1.0
        assert sampler.peak_util[-1] == pytest.approx(0.8)

    def test_periodic_sampling_until_horizon(self):
        sim, d, sampler = self.make(period=2.0, horizon=10.0)
        sampler.start()
        sim.run()
        assert len(sampler.times) == 5
        assert sampler.times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_report_aggregates(self):
        sim, d, sampler = self.make(period=1.0, horizon=5.0)
        d[0].reserve(ResourceVector(NAMES, [50, 50]))
        sampler.start()
        sim.run()
        report = sampler.report(skip_warmup=1)
        assert report.n_samples == 4
        assert 0 < report.mean_jain <= 1.0
        assert report.mean_utilization == pytest.approx(0.125)
        assert "jain" in str(report)

    def test_report_needs_samples(self):
        sim, d, sampler = self.make()
        with pytest.raises(ValueError):
            sampler.report()

    def test_float_dust_clamped(self):
        sim, d, sampler = self.make()
        # Push availability a hair above capacity (release clamps at
        # capacity + tolerance, so emulate the dust directly).
        d[0].available.values += 1e-10
        j = sampler.sample_once()  # must not raise
        assert 0 < j <= 1.0
