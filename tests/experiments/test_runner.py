"""Integration tests for the experiment runner (small scale)."""


import pytest

from repro.experiments.config import ExperimentConfig, default_scale, paper_scale
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.workload.generator import WorkloadConfig


def tiny_config(algorithm="qsa", rate=30.0, horizon=5.0, churn=0.0, seed=0):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=200,
            seed=seed,
            churn=ChurnConfig(rate_per_min=churn) if churn > 0 else None,
        ),
        workload=WorkloadConfig(rate_per_min=rate, horizon=horizon,
                                duration_range=(1.0, 5.0)),
        algorithm=algorithm,
    )


class TestRunExperiment:
    def test_all_requests_resolved(self):
        result = run_experiment(tiny_config())
        assert result.n_requests > 0
        assert result.metrics.n_resolved == result.n_requests

    def test_success_ratio_bounds(self):
        result = run_experiment(tiny_config())
        assert 0.0 <= result.success_ratio <= 1.0

    def test_summary_mentions_algorithm(self):
        result = run_experiment(tiny_config("random"))
        assert result.summary().startswith("random")

    def test_reproducible(self):
        a = run_experiment(tiny_config(seed=5))
        b = run_experiment(tiny_config(seed=5))
        assert a.n_requests == b.n_requests
        assert a.success_ratio == b.success_ratio

    def test_seed_changes_results(self):
        a = run_experiment(tiny_config(seed=1))
        b = run_experiment(tiny_config(seed=2))
        assert a.n_requests != b.n_requests or a.success_ratio != b.success_ratio

    def test_churn_run_counts_events(self):
        result = run_experiment(tiny_config(churn=5.0))
        assert result.n_arrivals + result.n_departures > 0

    def test_probe_overhead_reported_for_qsa(self):
        result = run_experiment(tiny_config("qsa"))
        assert result.probe_overhead > 0.0

    def test_series_available(self):
        result = run_experiment(tiny_config())
        times, ratios = result.series(bin_minutes=1.0)
        assert len(times) == len(ratios) == 5


class TestConfigHelpers:
    def test_default_scale_shrinks_population(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        cfg = default_scale(rate_per_min=200, horizon=60)
        assert cfg.grid.n_peers == 1000
        assert cfg.workload.rate_per_min == pytest.approx(20.0)
        # The paper's 1% probing fraction is preserved.
        assert cfg.grid.probing.budget == 10

    def test_paper_scale_literal(self):
        cfg = paper_scale(rate_per_min=200, horizon=400)
        assert cfg.grid.n_peers == 10_000
        assert cfg.grid.probing.budget == 100
        assert cfg.workload.rate_per_min == 200

    def test_with_algorithm(self):
        cfg = default_scale(100, 10).with_algorithm("qsa", uptime_filter=False)
        assert cfg.algorithm == "qsa"
        assert cfg.algorithm_options == {"uptime_filter": False}

    def test_with_seed(self):
        cfg = default_scale(100, 10).with_seed(9)
        assert cfg.grid.seed == 9

    def test_paper_scale_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        cfg = default_scale(rate_per_min=200, horizon=60)
        assert cfg.grid.n_peers == 10_000

    def test_churn_config_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        cfg = default_scale(rate_per_min=100, horizon=60, churn_per_min=100)
        assert cfg.grid.churn is not None
        assert cfg.grid.churn.rate_per_min == pytest.approx(10.0)
