"""Unit tests for time-varying workload scenarios."""

import numpy as np
import pytest

from repro.services.applications import default_applications
from repro.sim import Simulator
from repro.workload.scenarios import (
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    VariableRateGenerator,
)


def drive(profile, horizon, seed=0):
    sim = Simulator()
    seen = []
    gen = VariableRateGenerator(
        sim, profile, horizon,
        default_applications(),
        alive_peer_ids=lambda: [0, 1, 2],
        sink=seen.append,
        rng=np.random.default_rng(seed),
    )
    gen.start()
    sim.run()
    return seen


class TestProfiles:
    def test_constant_rate(self):
        p = ConstantRate(30.0)
        assert p.rate_at(0) == p.rate_at(99) == 30.0
        assert p.max_rate == 30.0
        with pytest.raises(ValueError):
            ConstantRate(0.0)

    def test_flash_crowd_window(self):
        p = FlashCrowd(base_rate=10.0, start=5.0, duration=3.0, peak=8.0,
                       hot_application="video-on-demand")
        assert p.rate_at(4.9) == 10.0
        assert p.rate_at(5.0) == 80.0
        assert p.rate_at(7.9) == 80.0
        assert p.rate_at(8.0) == 10.0
        assert p.max_rate == 80.0
        assert p.app_bias_at(6.0) == "video-on-demand"
        assert p.app_bias_at(4.0) is None

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(base_rate=10, start=0, duration=0)
        with pytest.raises(ValueError):
            FlashCrowd(base_rate=10, start=0, duration=1, peak=0.5)

    def test_diurnal_bounds(self):
        p = DiurnalRate(mean_rate=100.0, amplitude=0.5, period=100.0)
        rates = [p.rate_at(t) for t in np.linspace(0, 100, 200)]
        assert min(rates) >= 50.0 - 1e-9
        assert max(rates) <= 150.0 + 1e-9
        assert p.max_rate == 150.0

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalRate(mean_rate=0.0)
        with pytest.raises(ValueError):
            DiurnalRate(mean_rate=10, amplitude=1.0)


class TestThinningGenerator:
    def test_constant_matches_homogeneous_count(self):
        seen = drive(ConstantRate(60.0), horizon=20.0)
        assert 1000 < len(seen) < 1450  # Poisson(1200) +- slack

    def test_flash_crowd_burst_visible_in_arrivals(self):
        p = FlashCrowd(base_rate=20.0, start=10.0, duration=5.0, peak=10.0)
        seen = drive(p, horizon=25.0)
        in_burst = [r for r in seen if 10.0 <= r.arrival_time < 15.0]
        outside = [r for r in seen if r.arrival_time < 10.0]
        rate_in = len(in_burst) / 5.0
        rate_out = len(outside) / 10.0
        assert rate_in > 5 * rate_out

    def test_hot_application_dominates_burst(self):
        p = FlashCrowd(base_rate=10.0, start=0.0, duration=20.0, peak=10.0,
                       hot_application="video-on-demand")
        seen = drive(p, horizon=20.0)
        hot = sum(1 for r in seen if r.application == "video-on-demand")
        # Excess share = 0.9 of burst traffic, plus 1/10 of the base mix.
        assert hot / len(seen) > 0.7

    def test_without_hot_app_mix_unbiased(self):
        p = FlashCrowd(base_rate=20.0, start=0.0, duration=30.0, peak=5.0)
        seen = drive(p, horizon=30.0)
        hot = sum(1 for r in seen if r.application == "video-on-demand")
        assert hot / len(seen) < 0.3

    def test_diurnal_modulates_arrivals(self):
        p = DiurnalRate(mean_rate=120.0, amplitude=0.8, period=40.0)
        seen = drive(p, horizon=40.0)
        # Peak quarter (around t=10) vs trough quarter (around t=30).
        peak = sum(1 for r in seen if 5 <= r.arrival_time < 15)
        trough = sum(1 for r in seen if 25 <= r.arrival_time < 35)
        assert peak > 2 * trough

    def test_horizon_respected(self):
        seen = drive(ConstantRate(100.0), horizon=3.0)
        assert all(r.arrival_time <= 3.0 for r in seen)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            VariableRateGenerator(
                sim, ConstantRate(1.0), 0.0, default_applications(),
                lambda: [0], lambda r: None, np.random.default_rng(0),
            )
        with pytest.raises(ValueError):
            VariableRateGenerator(
                sim, ConstantRate(1.0), 5.0, [],
                lambda: [0], lambda r: None, np.random.default_rng(0),
            )

    def test_ids_unique(self):
        seen = drive(ConstantRate(50.0), horizon=5.0)
        ids = [r.request_id for r in seen]
        assert len(set(ids)) == len(ids)
