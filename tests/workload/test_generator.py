"""Unit tests for the request generator."""

import numpy as np
import pytest

from repro.services.applications import default_applications
from repro.sim import Simulator
from repro.workload.generator import RequestGenerator, WorkloadConfig


def make(rate=60.0, horizon=10.0, peers=(0, 1, 2), seed=0):
    sim = Simulator()
    seen = []
    gen = RequestGenerator(
        sim,
        WorkloadConfig(rate_per_min=rate, horizon=horizon),
        default_applications(),
        alive_peer_ids=lambda: list(peers),
        sink=seen.append,
        rng=np.random.default_rng(seed),
    )
    return sim, gen, seen


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(rate_per_min=0)
        with pytest.raises(ValueError):
            WorkloadConfig(horizon=0)
        with pytest.raises(ValueError):
            WorkloadConfig(duration_range=(0.0, 10.0))


class TestGeneration:
    def test_rate_approximately_honored(self):
        sim, gen, seen = make(rate=100.0, horizon=20.0)
        gen.start()
        sim.run()
        # Poisson(100/min * 20 min) = 2000 expected.
        assert 1700 < len(seen) < 2300

    def test_stops_at_horizon(self):
        sim, gen, seen = make(rate=60.0, horizon=5.0)
        gen.start()
        sim.run()
        assert all(r.arrival_time <= 5.0 for r in seen)
        assert sim.now <= 5.0 + 1e-9

    def test_request_fields_within_spec(self):
        sim, gen, seen = make(rate=200.0, horizon=5.0)
        gen.start()
        sim.run()
        apps = {a.name for a in default_applications()}
        for r in seen:
            assert r.application in apps
            assert r.qos_level in ("low", "average", "high")
            assert 1.0 <= r.session_duration <= 60.0
            assert r.peer_id in (0, 1, 2)

    def test_request_ids_unique_and_ordered(self):
        sim, gen, seen = make(rate=100.0, horizon=5.0)
        gen.start()
        sim.run()
        ids = [r.request_id for r in seen]
        assert ids == sorted(set(ids))

    def test_all_levels_and_apps_occur(self):
        sim, gen, seen = make(rate=300.0, horizon=10.0)
        gen.start()
        sim.run()
        assert {r.qos_level for r in seen} == {"low", "average", "high"}
        assert len({r.application for r in seen}) == 10

    def test_no_alive_peers_skips(self):
        sim, gen, seen = make(rate=60.0, horizon=2.0, peers=())
        gen.start()
        sim.run()
        assert seen == []

    def test_reproducible(self):
        _, gen_a, seen_a = make(seed=3)
        _, gen_b, seen_b = make(seed=3)
        sim_a, sim_b = gen_a.sim, gen_b.sim
        gen_a.start(); sim_a.run()
        gen_b.start(); sim_b.run()
        assert [(r.arrival_time, r.application) for r in seen_a] == [
            (r.arrival_time, r.application) for r in seen_b
        ]

    def test_requires_applications(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RequestGenerator(
                sim, WorkloadConfig(), [], lambda: [0],
                lambda r: None, np.random.default_rng(0),
            )
