"""Unit tests for the telemetry event bus."""

import io
import json

import pytest

from repro.telemetry.bus import EventBus


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def bus(clock):
    return EventBus(clock)


class TestEmission:
    def test_emit_stamps_time_and_seq(self, bus, clock):
        clock.now = 2.5
        e1 = bus.emit("a", x=1)
        e2 = bus.emit("b")
        assert (e1.time, e1.seq) == (2.5, 0)
        assert (e2.time, e2.seq) == (2.5, 1)

    def test_fields_accessible_as_attributes(self, bus):
        e = bus.emit("lookup.done", hops=4)
        assert e.hops == 4
        assert e.fields["hops"] == 4
        with pytest.raises(AttributeError):
            e.missing

    def test_payload_may_carry_a_name_field(self, bus):
        # `span` events carry the span's own name alongside the event name.
        e = bus.emit("span", name="qcs.compose")
        assert e.name == "span"
        assert e.fields["name"] == "qcs.compose"

    def test_capacity_bounds_retention(self, clock):
        bus = EventBus(clock, capacity=3)
        for i in range(10):
            bus.emit("e", i=i)
        kept = bus.events()
        assert len(kept) == 3
        assert [e.i for e in kept] == [7, 8, 9]

    def test_dispatch_only_mode_retains_nothing(self, clock):
        bus = EventBus(clock, record=False)
        seen = []
        bus.subscribe("x", seen.append)
        bus.emit("x", v=1)
        assert bus.events() == []
        assert len(seen) == 1  # ...but still dispatches


class TestSubscription:
    def test_subscribers_receive_matching_events(self, bus):
        seen = []
        bus.subscribe("a", seen.append)
        bus.emit("a")
        bus.emit("b")
        assert [e.name for e in seen] == ["a"]

    def test_wildcard_subscriber_sees_everything(self, bus):
        seen = []
        bus.subscribe("*", seen.append)
        bus.emit("a")
        bus.emit("b.c")
        assert [e.name for e in seen] == ["a", "b.c"]

    def test_unsubscribe(self, bus):
        seen = []
        off = bus.subscribe("a", seen.append)
        bus.emit("a")
        off()
        bus.emit("a")
        assert len(seen) == 1


class TestQueries:
    def test_prefix_filter(self, bus):
        bus.emit("qcs.composed")
        bus.emit("qcs.failed")
        bus.emit("lookup.done")
        assert len(bus.events("qcs.")) == 2
        assert len(bus.events("qcs.composed")) == 1

    def test_time_window(self, bus, clock):
        bus.emit("a")
        clock.now = 5.0
        bus.emit("a")
        assert len(bus.events(since=1.0)) == 1
        assert len(bus.events(until=1.0)) == 1

    def test_counts(self, bus):
        bus.emit("a")
        bus.emit("a")
        bus.emit("b")
        assert bus.counts() == {"a": 2, "b": 1}


class TestExport:
    def test_jsonl_roundtrip(self, bus, clock):
        clock.now = 1.25
        bus.emit("a", peers={3, 1, 2}, pair=(1, 2))
        buf = io.StringIO()
        n = bus.export_jsonl(buf)
        assert n == 1
        rec = json.loads(buf.getvalue())
        assert rec["event"] == "a"
        assert rec["t"] == 1.25
        assert rec["peers"] == [1, 2, 3]  # sets export sorted
        assert rec["pair"] == [1, 2]

    def test_jsonl_to_path(self, bus, tmp_path):
        bus.emit("a", x=1)
        bus.emit("b", y=2)
        path = tmp_path / "events.jsonl"
        assert bus.export_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "a"

    def test_keys_are_sorted_for_byte_stability(self, bus):
        e = bus.emit("a", zebra=1, alpha=2)
        keys = list(json.loads(e.to_json()).keys())
        assert keys == sorted(keys)
