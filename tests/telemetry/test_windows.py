"""Sliding windows: ring semantics, clock jumps, and the differential
guarantee that attaching the registry tap leaves seeded telemetry
byte-identical.
"""

import pytest

from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.windows import SlidingWindow, WindowConfig, WindowedMetrics


class TestWindowConfig:
    def test_bucket_count(self):
        assert WindowConfig(width=5.0, step=0.25).n_buckets == 20
        assert WindowConfig(width=1.0, step=1.0).n_buckets == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(width=0.0)
        with pytest.raises(ValueError):
            WindowConfig(width=1.0, step=2.0)
        with pytest.raises(ValueError):
            WindowConfig(sample_cap=0)


class TestSlidingWindow:
    def test_values_age_out(self):
        w = SlidingWindow("x", config=WindowConfig(width=2.0, step=0.5))
        w.observe(0.1, 10.0)
        w.observe(1.0, 20.0)
        assert w.count(1.0) == 2
        # 0.1 falls out once the window has slid past it.
        assert w.count(2.9) == 1
        assert w.count(10.0) == 0

    def test_stats_over_live_slots(self):
        w = SlidingWindow("x", config=WindowConfig(width=5.0, step=1.0))
        for t, v in ((0.5, 1.0), (1.5, 3.0), (2.5, 5.0)):
            w.observe(t, v)
        s = w.stats(3.0)
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(3.0)
        assert s["p50"] == pytest.approx(3.0)
        assert s["p99"] == pytest.approx(5.0)

    def test_rate_uses_covered_span_not_width(self):
        # A window younger than its width must not under-report rate.
        w = SlidingWindow("x", config=WindowConfig(width=5.0, step=0.5))
        w.observe(0.0, 1.0)
        w.observe(1.0, 1.0)
        assert w.stats(1.0)["rate"] == pytest.approx(2.0)
        # Once mature, the full width is the denominator: the live
        # window [6, 11] holds t = 7..11 (5 observations) over width 5.
        for t in range(2, 12):
            w.observe(float(t), 1.0)
        s = w.stats(11.0)
        assert s["count"] == 5
        assert s["rate"] == pytest.approx(1.0)

    def test_large_clock_jump_recycles_lazily(self):
        # A jump of >> width must cost O(1) and drop all stale slots.
        w = SlidingWindow("x", config=WindowConfig(width=2.0, step=0.5))
        for t in range(4):
            w.observe(t * 0.5, 1.0)
        w.observe(1e6, 7.0)
        s = w.stats(1e6)
        assert s["count"] == 1
        assert s["mean"] == pytest.approx(7.0)

    def test_slot_collision_resets_old_bucket(self):
        # Two timestamps hashing to the same ring slot (ids differing by
        # n_buckets) must not mix their values.
        cfg = WindowConfig(width=2.0, step=1.0)  # 2 slots
        w = SlidingWindow("x", config=cfg)
        w.observe(0.5, 100.0)   # bucket 0 -> slot 0
        w.observe(2.5, 1.0)     # bucket 2 -> slot 0 again
        s = w.stats(3.0)
        assert s["count"] == 1
        assert s["mean"] == pytest.approx(1.0)

    def test_sample_cap_bounds_memory_not_count(self):
        cfg = WindowConfig(width=1.0, step=1.0, sample_cap=8)
        w = SlidingWindow("x", config=cfg)
        for i in range(100):
            w.observe(0.5, float(i))
        s = w.stats(0.9)
        assert s["count"] == 100          # aggregates keep exact count
        assert s["mean"] == pytest.approx(sum(range(100)) / 100)
        # percentiles come from the bounded sample only
        assert s["p99"] <= 7.0

    def test_empty_window_is_all_zeros(self):
        w = SlidingWindow("x")
        assert w.stats(5.0) == {"count": 0, "rate": 0.0, "mean": 0.0,
                                "p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert w.percentile(5.0, 95) == 0.0


class TestWindowedMetrics:
    def test_tap_auto_creates_series(self):
        wm = WindowedMetrics(clock=lambda: 1.0)
        wm.record("qcs.compositions", "counter", 1.0)
        wm.record("lookup.hops", "histogram", 4.0)
        assert wm.names() == ["lookup.hops", "qcs.compositions"]

    def test_tap_ignores_gauges(self):
        wm = WindowedMetrics(clock=lambda: 1.0)
        wm.record("probe.tables", "gauge", 12.0)
        assert wm.names() == []

    def test_track_is_idempotent_and_marks_wall(self):
        wm = WindowedMetrics(clock=lambda: 0.0)
        a = wm.track("serve.window.setup_latency_us", wall=True)
        b = wm.track("serve.window.setup_latency_us", wall=True)
        assert a is b
        assert wm.series("serve.window.setup_latency_us").wall is True

    def test_snapshot_carries_kind_and_wall(self):
        wm = WindowedMetrics(clock=lambda: 1.0)
        wm.track("serve.window.requests", kind="counter")
        wm.observe("serve.window.requests", 1.0, now=0.5)
        snap = wm.snapshot(now=1.0)
        entry = snap["serve.window.requests"]
        assert entry["kind"] == "counter"
        assert entry["wall"] is False
        assert entry["count"] == 1

    def test_registry_tap_mirrors_instruments(self):
        clock_now = [0.0]
        registry = MetricsRegistry()
        wm = WindowedMetrics(clock=lambda: clock_now[0])
        registry.attach_tap(wm.record)
        c = registry.counter("qcs.compositions")
        h = registry.histogram("lookup.hops")
        c.inc()
        clock_now[0] = 1.0
        h.observe(6.0)
        assert wm.series("qcs.compositions").count(1.0) == 1
        assert wm.series("lookup.hops").stats(1.0)["p50"] == pytest.approx(6.0)
        # Detach: the mirror stops, instruments keep counting.
        registry.attach_tap(None)
        c.inc()
        assert c.value == 2
        assert wm.series("qcs.compositions").count(1.0) == 1

    def test_tap_attaches_to_preexisting_instruments(self):
        registry = MetricsRegistry()
        c = registry.counter("qcs.compositions")  # created before the tap
        wm = WindowedMetrics(clock=lambda: 0.5)
        registry.attach_tap(wm.record)
        c.inc(3.0)
        assert wm.series("qcs.compositions").total(0.5) == pytest.approx(3.0)


def _grid_config(seed=7):
    return GridConfig(
        n_peers=150, seed=seed, telemetry=True,
        churn=ChurnConfig(rate_per_min=4.0),
    )


def _drive(grid, minutes=8, per_minute=3):
    agg = grid.make_aggregator("qsa")

    def tick():
        for _ in range(per_minute):
            agg.aggregate(grid.make_request("video-on-demand", duration=4.0))

    for t in range(minutes):
        grid.sim.call_at(float(t), tick)
    grid.sim.run(until=float(minutes) + 8.0)
    grid.churn.stop()
    grid.sim.run()


class TestDifferentialByteIdentity:
    """The tentpole invariant: the windowed layer never perturbs the
    deterministic export path.  Same seed, tap on vs off -> identical
    JSONL bytes."""

    def test_jsonl_identical_with_and_without_tap(self, tmp_path):
        plain = P2PGrid(_grid_config())
        _drive(plain)
        path_plain = tmp_path / "plain.jsonl"
        plain.telemetry.bus.export_jsonl(str(path_plain))

        tapped = P2PGrid(_grid_config())
        wm = WindowedMetrics(clock=lambda: tapped.sim.now)
        tapped.telemetry.metrics.attach_tap(wm.record)
        _drive(tapped)
        path_tapped = tmp_path / "tapped.jsonl"
        tapped.telemetry.bus.export_jsonl(str(path_tapped))

        assert path_plain.read_bytes() == path_tapped.read_bytes()
        assert path_plain.stat().st_size > 0
        # ... and the tap actually saw traffic (the test is not vacuous).
        assert wm.names()
        assert any(wm.series(n).count(tapped.sim.now, width=1e9)
                   for n in wm.names())
