"""The Telemetry facade: enabled/disabled modes and summary output."""

import io

from repro.telemetry.bus import EventBus
from repro.telemetry.facade import Telemetry
from repro.telemetry.spans import NULL_TRACER, SpanTracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestEnabledMode:
    def test_components_wired(self):
        tel = Telemetry(FakeClock(), enabled=True)
        assert tel.enabled
        assert isinstance(tel.bus, EventBus)
        assert isinstance(tel.tracer, SpanTracer)

    def test_events_recorded_and_exported(self):
        tel = Telemetry(FakeClock(), enabled=True)
        tel.bus.emit("lookup.done", hops=3)
        tel.bus.emit("session.resolved", outcome="completed")
        assert len(tel.bus) == 2
        buf = io.StringIO()
        assert tel.export_jsonl(buf) == 2
        assert buf.getvalue().count("\n") == 2

    def test_spans_emit_to_bus(self):
        clock = FakeClock()
        tel = Telemetry(clock, enabled=True)
        with tel.tracer.span("request", request_id=1):
            clock.now = 2.0
        events = list(tel.bus)
        assert [e.name for e in events] == ["span"]
        assert events[0].fields["name"] == "request"

    def test_span_tree_renders(self):
        tel = Telemetry(FakeClock(), enabled=True)
        with tel.tracer.span("request"):
            with tel.tracer.span("qcs.compose"):
                pass
        tree = tel.span_tree()
        assert "request" in tree
        assert "  qcs.compose" in tree


class TestDisabledMode:
    def test_null_tracer_and_empty_bus(self):
        tel = Telemetry.disabled()
        assert not tel.enabled
        assert tel.tracer is NULL_TRACER
        tel.bus.emit("lookup.done", hops=1)  # dispatch-only: not retained
        assert len(tel.bus) == 0
        assert tel.bus.n_emitted == 1

    def test_dispatch_still_reaches_subscribers(self):
        tel = Telemetry.disabled()
        seen = []
        tel.bus.subscribe("lookup.done", lambda e: seen.append(e))
        tel.bus.emit("lookup.done", hops=4)
        assert len(seen) == 1

    def test_spans_are_noops(self):
        tel = Telemetry.disabled()
        with tel.tracer.span("request"):
            pass
        assert len(tel.bus) == 0
        assert tel.span_tree() == "(no spans)"


class TestSummary:
    def test_event_counts_listed(self):
        tel = Telemetry(FakeClock(), enabled=True)
        tel.bus.emit("lookup.done", hops=2)
        tel.bus.emit("lookup.done", hops=5)
        text = tel.summary()
        assert "2 events emitted" in text
        assert "lookup.done" in text

    def test_metrics_table_included_when_nonempty(self):
        tel = Telemetry(FakeClock(), enabled=True)
        tel.metrics.counter("requests.total").inc()
        tel.metrics.histogram("lookup.hops").observe(4.0)
        text = tel.summary()
        assert "requests.total" in text
        assert "lookup.hops" in text
        # Satellite: histogram rows carry the percentile columns.
        assert "p50" in text and "p95" in text and "p99" in text

    def test_wall_table_included_after_spans(self):
        tel = Telemetry(FakeClock(), enabled=True)
        with tel.tracer.span("request"):
            pass
        assert "request" in tel.summary()
        assert "mean µs" in tel.summary()

    def test_wall_table_suppressed_without_spans(self):
        # tracer.wall_table() returns a "(...)" placeholder with no spans
        # recorded; summary() must drop it rather than print noise.
        tel = Telemetry(FakeClock(), enabled=True)
        assert "(no spans recorded)" not in tel.summary()

    def test_wall_table_suppressed_when_disabled(self):
        tel = Telemetry.disabled()
        tel.bus.emit("lookup.done", hops=1)
        assert "(tracing disabled)" not in tel.summary()
