"""Regression: ``request.setup`` must report the result's fallback count.

The event used to read a stale ``self._fallbacks`` snapshot via getattr,
which could disagree with ``AggregationResult.random_fallbacks`` (the
single source of truth the metrics layer and explain tooling use).
"""

from repro.grid import GridConfig, P2PGrid
from repro.probing.prober import ProbingConfig


def _drive(grid, n=25):
    agg = grid.make_aggregator("qsa")
    events = []
    grid.telemetry.bus.subscribe("request.setup", events.append)
    results = []
    for _ in range(n):
        req = grid.make_request("video-on-demand", qos_level="average",
                                duration=3.0)
        results.append(agg.aggregate(req))
    assert len(events) == len(results)
    return events, results


def test_request_setup_event_matches_result_fallbacks():
    grid = P2PGrid(GridConfig(n_peers=150, seed=11, telemetry=True))
    for event, result in zip(*_drive(grid)):
        assert event.fields["random_fallbacks"] == result.random_fallbacks


def test_fallback_counts_propagate_when_nonzero():
    # A zero probe budget keeps every neighbor table empty, so every
    # selected hop is a random fallback -- the comparison above cannot be
    # vacuously matching zeros here.
    grid = P2PGrid(GridConfig(n_peers=150, seed=11, telemetry=True,
                              probing=ProbingConfig(budget=0)))
    events, results = _drive(grid)
    for event, result in zip(events, results):
        assert event.fields["random_fallbacks"] == result.random_fallbacks
    assert any(r.random_fallbacks > 0 for r in results)
