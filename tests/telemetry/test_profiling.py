"""Wall-clock profiling: attribution, reporting, and non-interference."""

import io

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.grid import GridConfig, P2PGrid
from repro.probing.prober import ProbingConfig
from repro.telemetry.analysis import load_jsonl_spans
from repro.telemetry.profiling import Profiler, profile_run
from repro.workload.generator import WorkloadConfig


def tiny_config(seed=0, telemetry=False):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=120, probing=ProbingConfig(budget=5), seed=seed,
            telemetry=telemetry,
        ),
        workload=WorkloadConfig(
            rate_per_min=20.0, horizon=3.0, duration_range=(1.0, 5.0)
        ),
        drain_minutes=6.0,
    )


class TestProfiler:
    def test_attach_requires_telemetry(self):
        grid = P2PGrid(GridConfig(n_peers=30, telemetry=False))
        with pytest.raises(ValueError, match="telemetry"):
            Profiler().attach(grid)

    def test_collects_wall_spans_and_latency(self):
        result, report = profile_run(tiny_config())
        assert result.n_requests > 0
        assert report.wall_spans
        # One latency sample per request span.
        assert report.setup_latency_us.count == len(
            [r for r in report.wall_spans if r.name == "request"]
        )
        assert report.setup_latency_us.count > 0
        # Wall spans carry real (positive) durations, unlike sim spans.
        assert any(r.duration > 0 for r in report.wall_spans)

    def test_detached_session_spans_excluded(self):
        # Session spans measure sim lifetimes; their wall extent would
        # swamp the hot-path attribution, so the profiler skips them.
        _, report = profile_run(tiny_config())
        assert all(r.name != "session" for r in report.wall_spans)

    def test_throughput_counters(self):
        result, report = profile_run(tiny_config())
        t = report.throughput
        assert set(t) == {
            "requests_per_sec", "lookups_per_sec", "probes_per_sec"
        }
        assert t["requests_per_sec"] > 0
        assert t["lookups_per_sec"] > 0
        assert t["requests_per_sec"] == pytest.approx(
            result.n_requests / result.wall_seconds
        )


class TestProfileReport:
    def test_render_mentions_every_section(self):
        _, report = profile_run(tiny_config())
        text = report.render()
        assert "wall clock:" in text
        assert "requests_per_sec" in text
        assert "request setup latency" in text
        assert "'request' trees" in text

    def test_latency_percentiles_ordered(self):
        _, report = profile_run(tiny_config())
        p = report.latency_percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"] <= p["max"]

    def test_trace_export_round_trips(self):
        _, report = profile_run(tiny_config())
        buf = io.StringIO()
        n = report.export_trace_jsonl(buf)
        assert n == len(report.wall_spans)
        buf.seek(0)
        records, unit = load_jsonl_spans(buf)
        assert unit == "s"
        assert len(records) == n
        assert {r.name for r in records} == {
            r.name for r in report.wall_spans
        }

    def test_cprofile_report_attached(self):
        _, report = profile_run(tiny_config(), cprofile=True, top=5)
        assert report.cprofile_text
        assert "cumulative" in report.cprofile_text


class TestNonInterference:
    """Profiling must not perturb the deterministic telemetry stream."""

    def export(self, profiled: bool) -> str:
        buf = io.StringIO()
        config = tiny_config(seed=7, telemetry=True).with_telemetry(buf)
        if profiled:
            profile_run(config)
        else:
            run_experiment(config)
        return buf.getvalue()

    def test_telemetry_jsonl_byte_identical_under_profiling(self):
        assert self.export(profiled=False) == self.export(profiled=True)

    def test_result_psi_unchanged_under_profiling(self):
        plain = run_experiment(tiny_config(seed=3))
        profiled, _ = profile_run(tiny_config(seed=3))
        assert plain.success_ratio == profiled.success_ratio
        assert plain.n_requests == profiled.n_requests
