"""Trace analytics: forest reconstruction, critical paths, flame export."""

import io
import re

import pytest

from repro.telemetry.analysis import (
    SpanRecord,
    TraceAnalysisError,
    aggregate_spans,
    build_forest,
    critical_path,
    folded_stacks,
    format_span_table,
    load_jsonl_spans,
    phase_report,
    render_folded,
    render_forest,
    spans_from_events,
)
from repro.telemetry.bus import EventBus


def span(name, span_id, parent, start, end, **fields):
    return SpanRecord(
        name=name, span_id=span_id, parent_id=parent,
        start=start, end=end, fields=fields,
    )


def request_tree():
    """One request span with a QCS phase and a probing phase under it."""
    return [
        span("request", 0, None, 0.0, 10.0),
        span("qcs.compose", 1, 0, 0.0, 6.0),
        span("qcs.graph_build", 2, 1, 0.0, 2.0),
        span("qcs.solve", 3, 1, 2.0, 6.0),
        span("probing.resolve", 4, 0, 6.0, 9.0),
    ]


class TestForest:
    def test_builds_tree_from_parent_links(self):
        forest = build_forest(request_tree())
        assert len(forest) == 1
        root = forest[0]
        assert root.name == "request"
        assert [c.name for c in root.children] == [
            "qcs.compose", "probing.resolve"
        ]
        assert [c.name for c in root.children[0].children] == [
            "qcs.graph_build", "qcs.solve"
        ]

    def test_orphan_parent_becomes_root(self):
        # Parent id 42 never closed (still open at export time).
        forest = build_forest([span("lookup", 7, 42, 1.0, 2.0)])
        assert len(forest) == 1
        assert forest[0].name == "lookup"

    def test_children_sorted_by_start(self):
        records = [
            span("root", 0, None, 0.0, 5.0),
            span("late", 2, 0, 3.0, 4.0),
            span("early", 1, 0, 1.0, 2.0),
        ]
        forest = build_forest(records)
        assert [c.name for c in forest[0].children] == ["early", "late"]

    def test_self_time_excludes_children(self):
        root = build_forest(request_tree())[0]
        # 10 total - (6 compose + 3 probing) = 1 of own time.
        assert root.self_time == pytest.approx(1.0)
        compose = root.children[0]
        # 6 total - (2 + 4) children = 0.
        assert compose.self_time == pytest.approx(0.0)

    def test_self_time_clamped_when_children_overlap(self):
        records = [
            span("root", 0, None, 0.0, 1.0),
            span("a", 1, 0, 0.0, 1.0),
            span("b", 2, 0, 0.0, 1.0),
        ]
        assert build_forest(records)[0].self_time == 0.0

    def test_walk_is_depth_first_parent_before_children(self):
        root = build_forest(request_tree())[0]
        names = [n.name for n in root.walk()]
        assert names == [
            "request", "qcs.compose", "qcs.graph_build", "qcs.solve",
            "probing.resolve",
        ]


class TestIngestion:
    def test_spans_from_bus_events(self):
        bus = EventBus(lambda: 5.0, record=True)
        bus.emit("span", name="request", id=0, parent=None, start=1.0,
                 request_id=9)
        bus.emit("lookup.done", hops=3)  # non-span events are skipped
        records = spans_from_events(list(bus))
        assert len(records) == 1
        r = records[0]
        assert (r.name, r.span_id, r.parent_id) == ("request", 0, None)
        assert (r.start, r.end) == (1.0, 5.0)
        assert r.fields == {"request_id": 9}

    def test_load_jsonl_telemetry_unit_is_minutes(self):
        stream = io.StringIO(
            '{"t": 2.0, "seq": 0, "event": "span", "name": "request", '
            '"id": 0, "parent": null, "start": 1.0}\n'
            '{"t": 2.0, "seq": 1, "event": "lookup.done", "hops": 3}\n'
        )
        records, unit = load_jsonl_spans(stream)
        assert unit == "min"
        assert len(records) == 1

    def test_load_jsonl_profile_unit_is_seconds(self):
        stream = io.StringIO(
            '{"t": 0.5, "seq": 0, "event": "span", "name": "request", '
            '"id": 0, "parent": null, "start": 0.1, "unit": "s"}\n'
        )
        _, unit = load_jsonl_spans(stream)
        assert unit == "s"

    def test_invalid_json_raises_with_line_number(self):
        with pytest.raises(TraceAnalysisError, match="line 2"):
            load_jsonl_spans(io.StringIO('{"event": "other"}\n{nope\n'))

    def test_missing_span_field_raises(self):
        with pytest.raises(TraceAnalysisError, match="missing field"):
            load_jsonl_spans(io.StringIO(
                '{"t": 1.0, "event": "span", "name": "x", "id": 0}\n'
            ))


class TestAggregation:
    def test_per_name_totals(self):
        stats = aggregate_spans(build_forest(request_tree()))
        assert stats["request"].count == 1
        assert stats["request"].total == pytest.approx(10.0)
        assert stats["qcs.solve"].self_total == pytest.approx(4.0)
        assert stats["qcs.compose"].self_total == pytest.approx(0.0)

    def test_table_sorted_by_self_time(self):
        stats = aggregate_spans(build_forest(request_tree()))
        table = format_span_table(stats, unit="min")
        rows = table.splitlines()[1:]
        assert rows[0].startswith("qcs.solve")  # largest self time first

    def test_empty_table(self):
        assert format_span_table({}, unit="s") == "(no spans)"


class TestCriticalPath:
    def test_follows_largest_duration_child(self):
        root = build_forest(request_tree())[0]
        chain = [n.name for n in critical_path(root)]
        assert chain == ["request", "qcs.compose", "qcs.solve"]

    def test_phase_report_names_dominant_phase(self):
        report = phase_report(build_forest(request_tree()))
        assert "1 'request' trees" in report
        # qcs.solve holds 4 of 10 units of self time -> the dominant phase.
        assert "qcs.solve" in report
        assert "dominant phase per tree" in report
        assert "critical path of slowest tree" in report

    def test_phase_report_zero_duration_fallback(self):
        records = [
            span("request", 0, None, 3.0, 3.0),
            span("qcs.compose", 1, 0, 3.0, 3.0),
        ]
        report = phase_report(build_forest(records))
        assert "zero duration" in report
        assert "repro profile run" in report

    def test_phase_report_missing_root_lists_names(self):
        report = phase_report(build_forest(request_tree()), root_name="nope")
        assert "no 'nope' spans" in report
        assert "request" in report


FOLDED_LINE = re.compile(r"^\S+(;\S+)* \d+$")


class TestFlameExport:
    def test_folded_lines_are_valid(self):
        text = render_folded(folded_stacks(build_forest(request_tree())))
        lines = text.splitlines()
        assert lines
        for line in lines:
            assert FOLDED_LINE.match(line), f"bad folded line: {line!r}"

    def test_weights_are_scaled_self_times(self):
        stacks = folded_stacks(build_forest(request_tree()))
        assert stacks["request;qcs.compose;qcs.solve"] == 4_000_000
        assert stacks["request"] == 1_000_000
        # Zero-self-time frames are omitted entirely.
        assert "request;qcs.compose" not in stacks

    def test_count_fallback_when_all_durations_zero(self):
        records = [
            span("request", 0, None, 1.0, 1.0),
            span("qcs.compose", 1, 0, 1.0, 1.0),
        ]
        stacks = folded_stacks(build_forest(records))
        assert stacks == {"request": 1, "request;qcs.compose": 1}

    def test_explicit_by_count(self):
        stacks = folded_stacks(build_forest(request_tree()), by_count=True)
        assert all(v == 1 for v in stacks.values())


class TestRenderForest:
    def test_tree_rendering_and_limit(self):
        forest = build_forest(request_tree())
        text = render_forest(forest, unit="min")
        assert text.splitlines()[0].startswith("request")
        assert "  qcs.compose" in text
        clipped = render_forest(forest, unit="min", limit=2)
        assert "(5 spans total)" in clipped

    def test_empty(self):
        assert render_forest([], unit="s") == "(no spans)"
