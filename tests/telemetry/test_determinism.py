"""Telemetry determinism: a seed pins the exported byte stream.

Timestamps are simulated minutes and the ``(time, seq)`` order is the
simulator's own FIFO order, so two runs with the same seed must export
byte-identical JSONL -- the property that makes telemetry diffs usable
for regression hunting.  Wall-clock span durations exist only in the
in-process aggregates and must never reach the stream.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultPlan, FaultSpec
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.workload.generator import WorkloadConfig


def config(seed=0, export=None, faults=None):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=150,
            seed=seed,
            churn=ChurnConfig(rate_per_min=4.0),
            faults=faults,
        ),
        workload=WorkloadConfig(rate_per_min=20.0, horizon=5.0,
                                duration_range=(1.0, 4.0)),
        telemetry_export=export,
    )


def export_bytes(seed, tmp_path, tag, faults=None):
    path = tmp_path / f"{tag}.jsonl"
    result = run_experiment(config(seed=seed, export=str(path),
                                   faults=faults))
    return path.read_bytes(), result


class TestByteIdenticalStreams:
    def test_same_seed_same_bytes(self, tmp_path):
        a, res_a = export_bytes(3, tmp_path, "a")
        b, res_b = export_bytes(3, tmp_path, "b")
        assert a == b
        assert len(a) > 0
        assert res_a.n_telemetry_events == res_b.n_telemetry_events > 0

    def test_different_seed_different_bytes(self, tmp_path):
        a, _ = export_bytes(3, tmp_path, "a")
        c, _ = export_bytes(4, tmp_path, "c")
        assert a != c

    def test_summary_is_deterministic_modulo_wall_clock(self, tmp_path):
        # Event counts and the metrics registry repeat exactly; only the
        # span wall-clock table (explicitly in-process) may differ.
        _, res_a = export_bytes(5, tmp_path, "a")
        _, res_b = export_bytes(5, tmp_path, "b")

        def stable_part(summary):
            lines = []
            for line in summary.splitlines():
                if line.startswith("span") and "total ms" in line:
                    break  # the wall-clock table; everything above is seeded
                lines.append(line)
            return lines

        assert stable_part(res_a.telemetry_summary) == \
            stable_part(res_b.telemetry_summary)


PLAN = FaultPlan(
    faults=(
        FaultSpec(kind="probe_loss", rate=0.3),
        FaultSpec(kind="lookup_failure", rate=0.15),
        FaultSpec(kind="admission_failure", rate=0.1),
        FaultSpec(kind="stale_state", rate=0.5, staleness=2.0),
        FaultSpec(kind="partition", start=2.0, end=4.0, fraction=0.3),
    ),
    name="determinism",
)


class TestFaultedStreamsAreByteIdentical:
    """Same (seed, plan) -> the same faults -> the same byte stream."""

    def test_same_seed_same_plan_same_bytes(self, tmp_path):
        a, res_a = export_bytes(3, tmp_path, "a", faults=PLAN)
        b, res_b = export_bytes(3, tmp_path, "b", faults=PLAN)
        assert a == b
        assert res_a.n_faults_injected == res_b.n_faults_injected > 0
        assert res_a.fault_summary == res_b.fault_summary

    def test_fault_events_reach_the_stream(self, tmp_path):
        a, res = export_bytes(3, tmp_path, "a", faults=PLAN)
        assert b'"event": "fault.injected"' in a
        assert b'"event": "retry.attempt"' in a
        assert res.n_retries > 0

    def test_different_plan_different_bytes(self, tmp_path):
        a, _ = export_bytes(3, tmp_path, "a", faults=PLAN)
        other = FaultPlan((FaultSpec(kind="probe_loss", rate=0.6),))
        c, _ = export_bytes(3, tmp_path, "c", faults=other)
        assert a != c

    @pytest.mark.slow
    def test_no_plan_differs_from_faulted(self, tmp_path):
        a, res_a = export_bytes(3, tmp_path, "a", faults=PLAN)
        d, res_d = export_bytes(3, tmp_path, "d")
        assert a != d
        assert res_d.n_faults_injected == 0
        assert res_d.fault_summary is None


class TestDisabledRunEmitsNothing:
    def test_no_retained_events_without_telemetry(self):
        result = run_experiment(config(seed=1))
        assert result.n_telemetry_events == 0
        assert result.telemetry_summary is None
