"""SLO engine: burn math, multi-window classification, the
ok -> breach -> ok lifecycle under a fault burst, and the invariant
that wall-fed objectives never reach the event bus.
"""

import pytest

from repro.telemetry.bus import EventBus
from repro.telemetry.catalog import SLO_CATALOG
from repro.telemetry.slo import (
    Objective,
    SloEngine,
    default_serving_objectives,
)
from repro.telemetry.windows import WindowConfig, WindowedMetrics


def _objective(**overrides):
    base = dict(
        name="slo.psi",
        description="test floor",
        kind="floor",
        target=0.85,
        series="serve.window.admits",
        stat="ratio",
        denominator="serve.window.requests",
    )
    base.update(overrides)
    return Objective(**base)


class TestObjective:
    def test_floor_burn(self):
        obj = _objective(target=0.8)
        assert obj.burn(1.0) == pytest.approx(0.0)
        assert obj.burn(0.8) == pytest.approx(1.0)   # exactly at target
        assert obj.burn(0.6) == pytest.approx(2.0)   # double burn

    def test_ceiling_burn(self):
        obj = _objective(name="slo.denial_rate", kind="ceiling", target=0.25)
        assert obj.burn(0.0) == pytest.approx(0.0)
        assert obj.burn(0.25) == pytest.approx(1.0)
        assert obj.burn(0.5) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _objective(kind="wall")
        with pytest.raises(ValueError):
            _objective(stat="p42")
        with pytest.raises(ValueError):
            _objective(stat="ratio", denominator=None)

    def test_default_objectives_are_catalogued(self):
        objectives = default_serving_objectives()
        assert {o.name for o in objectives} == set(SLO_CATALOG)

    def test_target_overrides_by_name(self):
        objectives = default_serving_objectives({"slo.psi": 0.6})
        psi = next(o for o in objectives if o.name == "slo.psi")
        assert psi.target == pytest.approx(0.6)
        others = [o for o in objectives if o.name != "slo.psi"]
        defaults = {o.name: o.target for o in default_serving_objectives()}
        for o in others:
            assert o.target == defaults[o.name]


def _engine(bus=None, **objective_overrides):
    windows = WindowedMetrics(
        clock=lambda: 0.0,
        config=WindowConfig(width=4.0, step=0.5),
    )
    windows.track("serve.window.requests", kind="counter")
    windows.track("serve.window.admits", kind="counter")
    engine = SloEngine(
        windows, (_objective(**objective_overrides),), bus=bus
    )
    return windows, engine


def _feed(windows, t, admitted):
    windows.observe("serve.window.requests", 1.0, now=t)
    if admitted:
        windows.observe("serve.window.admits", 1.0, now=t)


class TestSloEngine:
    def test_no_signal_is_ok(self):
        _, engine = _engine()
        (status,) = engine.evaluate(0.0)
        assert status.state == "ok"
        assert status.count_long == 0

    def test_min_count_suppresses_alarms(self):
        windows, engine = _engine(min_count=5)
        # Three denials in a row: 100% burn but below min_count.
        for i in range(3):
            _feed(windows, 0.1 * i, admitted=False)
        (status,) = engine.evaluate(0.5)
        assert status.state == "ok"

    def test_breach_needs_short_and_long(self):
        # Long window bad, short window healthy -> warn, not breach.
        windows, engine = _engine(min_count=1)
        for i in range(10):
            _feed(windows, 0.1 + 0.2 * i, admitted=False)   # t in [0.1, 2)
        for i in range(10):
            _feed(windows, 3.1 + 0.05 * i, admitted=True)   # recent: healthy
        (status,) = engine.evaluate(3.8)
        assert status.burn_long >= 1.0
        assert status.burn_short < 1.0
        assert status.state == "warn"

    def test_ok_breach_ok_lifecycle_emits_transitions(self):
        bus = EventBus(clock=lambda: 0.0)
        windows, engine = _engine(bus=bus, min_count=1)
        # Healthy traffic.
        for i in range(20):
            _feed(windows, 0.1 * i, admitted=True)
        (status,) = engine.evaluate(2.0)
        assert status.state == "ok"
        # Fault burst: everything denied -> short and long burn out.
        for i in range(30):
            _feed(windows, 2.0 + 0.05 * i, admitted=False)
        (status,) = engine.evaluate(3.5)
        assert status.state == "breach"
        # Recovery: the denials age out of both windows.
        for i in range(40):
            _feed(windows, 8.0 + 0.05 * i, admitted=True)
        (status,) = engine.evaluate(10.0)
        assert status.state == "ok"
        states = [e.fields["state"] for e in bus.events("slo.state")]
        assert states == ["breach", "ok"]
        first = bus.events("slo.state")[0].fields
        assert first["slo"] == "slo.psi"
        assert first["previous"] == "ok"
        assert first["burn"] >= 1.0

    def test_steady_state_stays_silent(self):
        bus = EventBus(clock=lambda: 0.0)
        windows, engine = _engine(bus=bus, min_count=1)
        for i in range(20):
            _feed(windows, 0.1 * i, admitted=True)
        for step in range(8):
            engine.evaluate(2.0 + 0.5 * step)
        assert bus.events("slo.state") == []
        assert engine.n_transitions == 0

    def test_wall_fed_objective_never_reaches_the_bus(self):
        bus = EventBus(clock=lambda: 0.0)
        windows = WindowedMetrics(
            clock=lambda: 0.0,
            config=WindowConfig(width=4.0, step=0.5),
        )
        windows.track("serve.window.setup_latency_us", wall=True)
        obj = Objective(
            name="slo.setup_latency_p95",
            description="wall latency ceiling",
            kind="ceiling",
            target=100.0,
            series="serve.window.setup_latency_us",
            stat="p95",
            min_count=1,
        )
        engine = SloEngine(windows, (obj,), bus=bus)
        for i in range(10):
            windows.observe("serve.window.setup_latency_us", 5000.0,
                            now=0.1 * i)
        (status,) = engine.evaluate(1.0)
        assert status.state == "breach"       # fully visible in the view
        assert bus.events("slo.state") == []  # but silent on the stream
        assert engine.n_transitions == 1

    def test_maybe_evaluate_throttles_to_step(self):
        _, engine = _engine()
        engine.maybe_evaluate(0.0)
        engine.maybe_evaluate(0.1)
        engine.maybe_evaluate(0.4)
        assert engine.n_evaluations == 1
        engine.maybe_evaluate(0.5)
        assert engine.n_evaluations == 2

    def test_worst_state_and_as_dict(self):
        windows, engine = _engine(min_count=1)
        for i in range(30):
            _feed(windows, 0.05 * i, admitted=False)
        doc = engine.as_dict(1.5)
        assert doc["state"] == "breach"
        assert engine.worst_state() == "breach"
        assert doc["windows"]["long"] == pytest.approx(4.0)
        assert doc["windows"]["short"] == pytest.approx(1.0)
        (obj_doc,) = doc["objectives"]
        assert obj_doc["slo"] == "slo.psi"
        assert obj_doc["state"] == "breach"
        assert obj_doc["since"] is not None
