"""Prometheus exposition: naming, formatting, wall labelling, and
byte-stability of the rendered text for identical inputs.
"""

import pytest

from repro.telemetry.exposition import (
    CONTENT_TYPE,
    prometheus_name,
    render_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import Objective, SloEngine
from repro.telemetry.windows import WindowConfig, WindowedMetrics


class TestNaming:
    def test_dotted_to_snake(self):
        assert prometheus_name("lookup.hops") == "repro_lookup_hops"
        assert prometheus_name("serve.window.setup_latency_us") == \
            "repro_serve_window_setup_latency_us"

    def test_invalid_chars_are_replaced(self):
        assert prometheus_name("a-b c") == "repro_a_b_c"

    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE


def _registry():
    registry = MetricsRegistry()
    registry.counter("lookup.count").inc(42)
    registry.gauge("probe.tables").set(7)
    h = registry.histogram("lookup.hops")
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        h.observe(v)
    return registry


class TestRegistryRendering:
    def test_counter_gets_total_suffix(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_lookup_count_total counter" in text
        assert "repro_lookup_count_total 42" in text

    def test_gauge(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_probe_tables gauge" in text
        assert "repro_probe_tables 7" in text

    def test_histogram_as_summary_with_reservoir_caveat(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_lookup_hops summary" in text
        assert "first 10k observations" in text
        assert 'repro_lookup_hops{quantile="0.50"} 3' in text
        assert "repro_lookup_hops_sum 15" in text
        assert "repro_lookup_hops_count 5" in text

    def test_trailing_newline(self):
        assert render_prometheus(_registry()).endswith("\n")

    def test_int_like_floats_render_short(self):
        text = render_prometheus(_registry())
        assert "repro_lookup_count_total 42.0" not in text


def _windows_snapshot():
    wm = WindowedMetrics(clock=lambda: 2.0,
                         config=WindowConfig(width=4.0, step=0.5))
    wm.track("serve.window.requests", kind="counter")
    wm.track("serve.window.setup_latency_us", wall=True)
    for i in range(8):
        wm.observe("serve.window.requests", 1.0, now=0.25 * i)
        wm.observe("serve.window.setup_latency_us", 100.0 * i, now=0.25 * i)
    return wm.snapshot(now=2.0)


class TestWindowRendering:
    def test_windowed_series_lines(self):
        text = render_prometheus(MetricsRegistry(),
                                 windows=_windows_snapshot())
        assert ('repro_window_count{series="serve.window.requests"} 8'
                in text)
        assert "# TYPE repro_window_rate gauge" in text
        assert "repro_window_p95{" in text

    def test_wall_series_carry_clock_label(self):
        text = render_prometheus(MetricsRegistry(),
                                 windows=_windows_snapshot())
        assert ('series="serve.window.setup_latency_us",clock="wall"'
                in text)
        # the sim-fed series must NOT carry the label
        assert ('series="serve.window.requests",clock' not in text)

    def test_include_wall_false_drops_wall_series(self):
        text = render_prometheus(MetricsRegistry(),
                                 windows=_windows_snapshot(),
                                 include_wall=False)
        assert "setup_latency_us" not in text
        assert 'series="serve.window.requests"' in text


def _slo_doc():
    wm = WindowedMetrics(clock=lambda: 2.0,
                         config=WindowConfig(width=4.0, step=0.5))
    wm.track("serve.window.requests", kind="counter")
    wm.track("serve.window.admits", kind="counter")
    wm.track("serve.window.setup_latency_us", wall=True)
    for i in range(10):
        wm.observe("serve.window.requests", 1.0, now=0.2 * i)
        if i % 2 == 0:
            wm.observe("serve.window.admits", 1.0, now=0.2 * i)
        wm.observe("serve.window.setup_latency_us", 50.0, now=0.2 * i)
    objectives = (
        Objective(name="slo.psi", description="floor", kind="floor",
                  target=0.85, series="serve.window.admits", stat="ratio",
                  denominator="serve.window.requests", min_count=1),
        Objective(name="slo.setup_latency_p95", description="wall ceiling",
                  kind="ceiling", target=100.0,
                  series="serve.window.setup_latency_us", stat="p95",
                  min_count=1),
    )
    engine = SloEngine(wm, objectives)
    engine.evaluate(2.0)
    return wm.snapshot(now=2.0), engine.as_dict()


class TestSloRendering:
    def test_states_and_burns(self):
        windows, slo = _slo_doc()
        text = render_prometheus(MetricsRegistry(), windows=windows, slo=slo)
        # ψ = 0.5 against a 0.85 floor on both windows -> breach (2)
        assert 'repro_slo_state{slo="slo.psi"} 2' in text
        assert 'repro_slo_target{slo="slo.psi"} 0.85' in text
        assert "repro_slo_burn_long{" in text
        assert "repro_slo_burn_short{" in text

    def test_wall_fed_objective_carries_clock_label(self):
        windows, slo = _slo_doc()
        text = render_prometheus(MetricsRegistry(), windows=windows, slo=slo)
        assert ('repro_slo_state{slo="slo.setup_latency_p95",clock="wall"}'
                in text)

    def test_include_wall_false_drops_wall_fed_objectives(self):
        windows, slo = _slo_doc()
        text = render_prometheus(MetricsRegistry(), windows=windows, slo=slo,
                                 include_wall=False)
        assert "setup_latency" not in text
        assert 'repro_slo_state{slo="slo.psi"}' in text


class TestByteStability:
    def test_identical_inputs_render_identically(self):
        a = render_prometheus(_registry(), windows=_windows_snapshot(),
                              slo=_slo_doc()[1])
        b = render_prometheus(_registry(), windows=_windows_snapshot(),
                              slo=_slo_doc()[1])
        assert a == b

    def test_deterministic_subset_is_wall_free(self):
        windows, slo = _slo_doc()
        text = render_prometheus(_registry(), windows=windows, slo=slo,
                                 include_wall=False)
        assert "wall" not in text
