"""Unit tests for sim-time span tracing."""

import pytest

from repro.telemetry.bus import EventBus
from repro.telemetry.spans import NULL_TRACER, SpanTracer, render_span_tree


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def bus(clock):
    return EventBus(clock)


@pytest.fixture
def tracer(bus, clock):
    return SpanTracer(bus, clock)


def span_events(bus):
    return bus.events("span")


class TestNesting:
    def test_parentage_follows_with_nesting(self, tracer, bus):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = span_events(bus)  # inner closes (emits) first
        assert inner.fields["name"] == "inner"
        assert inner.fields["parent"] == outer.fields["id"]
        assert outer.fields["parent"] is None

    def test_siblings_share_parent(self, tracer, bus):
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = span_events(bus)
        assert a.fields["parent"] == outer.fields["id"]
        assert b.fields["parent"] == outer.fields["id"]

    def test_interval_is_sim_time(self, tracer, bus, clock):
        clock.now = 3.0
        span = tracer.span("work")
        with span:
            clock.now = 7.5
        (event,) = span_events(bus)
        assert event.fields["start"] == 3.0
        assert event.time == 7.5

    def test_exception_records_error_field(self, tracer, bus):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (event,) = span_events(bus)
        assert event.fields["error"] == "RuntimeError"

    def test_double_end_is_idempotent(self, tracer, bus):
        span = tracer.span("once")
        span.end()
        span.end()
        assert len(span_events(bus)) == 1


class TestDetachedSpans:
    def test_open_does_not_nest(self, tracer, bus, clock):
        handle = tracer.open("session", session_id=9)
        with tracer.span("unrelated"):
            pass
        clock.now = 10.0
        handle.end(outcome="completed")
        unrelated, session = span_events(bus)
        assert unrelated.fields["parent"] is None  # open() left the stack alone
        assert session.fields["outcome"] == "completed"
        assert session.fields["session_id"] == 9
        assert session.time == 10.0


class TestWallAggregates:
    def test_totals_accumulate_per_name(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        totals = tracer.wall_totals()
        count, seconds = totals["a"]
        assert count == 2
        assert seconds >= 0.0
        assert "a" in tracer.wall_table()

    def test_wall_time_never_enters_the_event_stream(self, tracer, bus):
        with tracer.span("a"):
            pass
        (event,) = span_events(bus)
        assert set(event.fields) == {"name", "id", "parent", "start"}


class TestNullTracer:
    def test_noop_span_protocol(self):
        with NULL_TRACER.span("anything", x=1) as s:
            s.end()
        NULL_TRACER.open("detached").end(outcome="x")
        assert NULL_TRACER.wall_totals() == {}

    def test_shared_instance(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestRenderTree:
    def test_tree_indents_children(self, tracer, bus):
        with tracer.span("request", request_id=1):
            with tracer.span("qcs.compose"):
                pass
        text = render_span_tree(bus.events())
        lines = text.splitlines()
        assert lines[0].startswith("request")
        assert lines[1].startswith("  qcs.compose")

    def test_empty(self, bus):
        assert render_span_tree(bus.events()) == "(no spans)"
