"""Integration: the instrumented grid feeds the telemetry layer.

Drives a small churny grid with telemetry enabled and checks that every
subsystem shows up on the bus, that the stream is totally ordered, that
every emitted name is documented in the catalog, and that a disabled
grid emits/records nothing beyond the metrics-layer feed.
"""

import pytest

from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig
from repro.sessions.recovery import RecoveryConfig
from repro.telemetry import EVENT_CATALOG


def drive(grid, minutes=15, per_minute=3):
    agg = grid.make_aggregator("qsa")

    def tick():
        for _ in range(per_minute):
            agg.aggregate(grid.make_request("video-on-demand", duration=5.0))

    for t in range(minutes):
        grid.sim.call_at(float(t), tick)
    grid.sim.run(until=float(minutes) + 10.0)


@pytest.fixture(scope="module")
def traced_grid():
    grid = P2PGrid(GridConfig(
        n_peers=150, seed=5, telemetry=True,
        churn=ChurnConfig(rate_per_min=4.0),
        recovery=RecoveryConfig(),
    ))
    drive(grid)
    grid.churn.stop()
    grid.sim.run()
    return grid


class TestEnabledGrid:
    def test_every_subsystem_reports(self, traced_grid):
        counts = traced_grid.telemetry.bus.counts()
        for name in (
            "request.setup", "qcs.composed", "selection.hop",
            "probe.refresh", "lookup.done", "session.admitted",
            "session.resolved", "churn.join", "churn.leave", "span",
        ):
            assert counts.get(name, 0) > 0, f"no {name} events"

    def test_event_names_are_catalogued(self, traced_grid):
        emitted = set(traced_grid.telemetry.bus.counts())
        assert emitted <= set(EVENT_CATALOG)

    def test_stream_is_totally_ordered(self, traced_grid):
        events = traced_grid.telemetry.bus.events()
        keys = [(e.time, e.seq) for e in events]
        assert keys == sorted(keys)
        times = [e.time for e in events]
        assert times == sorted(times)  # non-decreasing sim timestamps

    def test_counters_match_subsystem_state(self, traced_grid):
        tel = traced_grid.telemetry
        counters = tel.metrics.counters()
        ledger = traced_grid.ledger
        assert counters["session.admitted"] == ledger.n_admitted
        assert counters["session.completed"] == ledger.n_completed
        assert counters.get("session.failed", 0) == ledger.n_failed
        churn = traced_grid.churn
        assert counters["churn.arrivals"] == churn.n_arrivals
        assert counters["churn.departures"] == churn.n_departures
        assert counters["probe.messages_sent"] == traced_grid.probing.probe_messages

    def test_lookup_histogram_matches_ring(self, traced_grid):
        hist = traced_grid.telemetry.metrics.histogram("lookup.hops")
        assert hist.count == traced_grid.ring.n_lookups
        assert hist.total == traced_grid.ring.total_hops

    def test_span_tree_renders(self, traced_grid):
        tree = traced_grid.telemetry.span_tree()
        assert "request" in tree
        assert "qcs.compose" in tree

    def test_summary_renders(self, traced_grid):
        summary = traced_grid.telemetry.summary()
        assert "events" in summary
        assert "counters" in summary


class TestDisabledGrid:
    def test_emits_only_metrics_feed_and_records_nothing(self):
        grid = P2PGrid(GridConfig(n_peers=150, seed=5))
        drive(grid, minutes=5)
        grid.sim.run()
        tel = grid.telemetry
        assert not tel.enabled
        assert len(tel.bus) == 0          # nothing retained
        assert tel.metrics.empty          # no instrument ever touched
        assert tel.tracer.wall_totals() == {}
        # The dispatch-only feed still carries the metrics-layer events.
        assert tel.bus.n_emitted > 0
