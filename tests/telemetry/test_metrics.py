"""Unit tests for the metrics registry instruments."""

import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_aggregates(self):
        h = Histogram("x")
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.mean == 3.0
        assert (h.min, h.max) == (1.0, 5.0)

    def test_percentiles(self):
        h = Histogram("x")
        for v in range(101):
            h.observe(v)
        assert h.percentile(0) == 0
        assert h.percentile(50) == 50
        assert h.percentile(100) == 100

    def test_empty_percentile(self):
        assert Histogram("x").percentile(95) == 0.0

    def test_reservoir_cap_keeps_aggregates_exact(self):
        h = Histogram("x", reservoir_cap=10)
        for v in range(100):
            h.observe(v)
        assert h.count == 100
        assert h.max == 99.0
        assert len(h._values) == 10


class TestRegistry:
    def test_lazy_creation_shares_by_name(self):
        reg = MetricsRegistry()
        assert reg.empty
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counters() == {"a": 2.0}
        assert not reg.empty

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        reg.histogram("h").observe(4)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_summary_table_lists_everything(self):
        reg = MetricsRegistry()
        reg.counter("qcs.compositions").inc(3)
        reg.gauge("probe.tables").set(42)
        reg.histogram("lookup.hops").observe(5)
        table = reg.summary_table()
        for fragment in ("qcs.compositions", "probe.tables", "lookup.hops"):
            assert fragment in table

    def test_summary_table_empty(self):
        assert MetricsRegistry().summary_table() == "(no metrics recorded)"

    def test_summary_table_labels_frozen_percentiles(self):
        # Cumulative histogram percentiles cover only the first
        # ``reservoir_cap`` observations; the table must say so.
        reg = MetricsRegistry()
        reg.histogram("lookup.hops").observe(5)
        assert "(percentiles: first 10k observations)" in reg.summary_table()

    def test_snapshot_reports_reservoir_occupancy(self):
        reg = MetricsRegistry()
        h = reg.histogram("lookup.hops")
        for v in range(20):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["lookup.hops"]
        assert snap["reservoir"] == 20
        assert snap["reservoir_cap"] == h._cap
